// Batched 2D FFT with per-axis truncation / zero padding.
//
// Layout convention (matches the FNO tensors): a 2D field is [DimX, DimY]
// row-major, DimY contiguous.  The 2D transform is two 1D stages:
//
//   stage 1: FFT along X with output truncation to keep_x rows — the
//            paper's "first FFT stage along the width" which writes only
//            the dimX/DimX fraction back (Fig 4);
//   stage 2: FFT along Y (contiguous) on the surviving keep_x rows with
//            output truncation to keep_y bins.
//
// Inverse runs the stages in the opposite order with zero-padded inputs.
//
// The X stage has two schedules (same arithmetic, bitwise-identical
// results).  The default transpose-based schedule blocks the field into
// column slabs, transposes each slab with the SIMD 4x4 tile kernel, runs
// the transforms over contiguous rows, and transposes only the surviving
// keep_x rows back (forward) / scatters the zero-padded columns (inverse).
// The legacy schedule runs one stride-DimY transform per column; it walks
// a full cache line per element at FNO sizes and is kept only for A/B
// benching behind TURBOFNO_FFT2D_TRANSPOSE=0.
//
// On top of the whole-field X stage, this header exposes the tile-granular
// producer/consumer pair (fft2d_x_stage_to_tiles / _from_tiles) that the
// fused 2D middle stages are built on: instead of materializing the
// x-major [keep_x, ny] intermediate, the X stage hands each post-transform
// column slab to the caller as a contiguous y-major [slab, keep_x] row
// block (and symmetrically reads such blocks on the inverse side).  The
// fused pipelines point these blocks straight at their cache-resident
// middle-stage staging, so the full [B*K*mx*ny] intermediate is never
// written or re-read (TURBOFNO_FUSED_MID).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "fft/plan.hpp"
#include "tensor/complex.hpp"

namespace turbofno::fft {

/// True when the transpose-based X-stage schedule is active.  Defaults to
/// the TURBOFNO_FFT2D_TRANSPOSE environment variable (unset means on); the
/// API override below wins over the environment.
[[nodiscard]] bool fft2d_transpose_enabled() noexcept;

/// Forces the X-stage schedule choice at runtime (A/B benchmarks, tests).
void set_fft2d_transpose(bool enabled) noexcept;

/// True when the fused 2D middle-stage schedule is active: FftPlan2d and
/// the fused 2D pipelines route the X stages through the tile API below so
/// the x-major intermediate between the X and Y stages never materializes.
/// Defaults to the TURBOFNO_FUSED_MID environment variable (unset means
/// on); the API override below wins over the environment.  Both settings
/// are bitwise-identical by construction — the knob exists for A/B
/// benchmarks and regression triage.  FftPlan2d additionally falls back to
/// the two-pass schedule when a field's staging tile (ny * keep_x) would
/// not stay L2-resident (dense >= 512^2), where the fused trade loses.
[[nodiscard]] bool fused_mid_enabled() noexcept;

/// Forces the fused-middle schedule choice at runtime (A/B, tests).
void set_fused_mid(bool enabled) noexcept;

/// Applies a 1D plan along the X (row) axis of `fields` row-major fields
/// with DimY-contiguous layout: `in` holds fields x [nonzero_or_n, ny]
/// and `out` receives fields x [keep_or_n, ny]; each of the ny columns of a
/// field is one transform.  Dispatches between the transpose-based and the
/// per-column schedule (see file header).  Shared by FftPlan2d and the
/// fused 2D pipelines' X stages; in and out must not overlap.
void fft2d_x_stage(const FftPlan& plan, const c32* in, c32* out, std::size_t fields,
                   std::size_t ny);

/// Destination resolver for the tile-producing X stage: returns the buffer
/// receiving the y-major row block of columns [y0, y0+g) of field `f`.
/// Row r of the block holds the keep_or_n() spectrum of column y0+r,
/// contiguous; block rows are packed keep_or_n() elements apart.
using XStageTileDst = std::function<c32*(std::size_t f, std::size_t y0, std::size_t g)>;

/// Source resolver for the tile-consuming inverse X stage: returns the
/// y-major row block holding the nonzero_or_n()-element spectra of columns
/// [y0, y0+g) of field `f`.  Row r is contiguous and rows are packed
/// nonzero_or_n() elements apart — NOT keep_or_n(): for a zero-padding
/// inverse plan the stored block rows are just the nonzero prefixes.
using XStageTileSrc =
    std::function<const c32*(std::size_t f, std::size_t y0, std::size_t g)>;

/// Tile-granular X stage (producer half): transforms every column of the
/// `fields` x [nonzero_or_n, ny] input, but instead of transposing the
/// spectra back into an x-major field, writes each column slab's rows
/// straight into the caller's y-major destination blocks.  This skips the
/// scatter transpose and — when the destination is cache-resident staging —
/// the full intermediate write that fft2d_x_stage would do.  Works under
/// both X-stage schedules; bitwise-identical spectra either way.
void fft2d_x_stage_to_tiles(const FftPlan& plan, const c32* in, std::size_t fields,
                            std::size_t ny, const XStageTileDst& dst);

/// Tile-granular X stage (consumer half): the inverse of _to_tiles.  Reads
/// each column slab's spectra from the caller's y-major source blocks,
/// transforms them, and scatters the resulting columns into the x-major
/// `out` fields ([keep_or_n, ny] each).  Skips the gather transpose that
/// fft2d_x_stage would need in front of the row transforms.
void fft2d_x_stage_from_tiles(const FftPlan& plan, const XStageTileSrc& src, c32* out,
                              std::size_t fields, std::size_t ny);

struct Plan2dDesc {
  std::size_t nx = 0;       // DimX
  std::size_t ny = 0;       // DimY
  Direction dir = Direction::Forward;
  std::size_t keep_x = 0;   // forward: rows kept; inverse: nonzero rows
  std::size_t keep_y = 0;   // forward: bins kept;  inverse: nonzero bins
  bool scale_inverse = true;

  [[nodiscard]] std::size_t keep_x_or_nx() const noexcept { return keep_x == 0 ? nx : keep_x; }
  [[nodiscard]] std::size_t keep_y_or_ny() const noexcept { return keep_y == 0 ? ny : keep_y; }
};

class FftPlan2d {
 public:
  /// Throws std::invalid_argument unless nx and ny are powers of two >= 2
  /// and keep_x <= nx, keep_y <= ny (0 keeps the full axis, per Plan2dDesc).
  /// Validated here — before the per-axis plans are derived — so degenerate
  /// descriptors (nx == 1, keep > n) fail with a 2D-level message instead
  /// of surfacing from a half-built axis plan, and the tile API above can
  /// never be handed an empty or undersized slab.
  explicit FftPlan2d(Plan2dDesc desc);

  [[nodiscard]] const Plan2dDesc& desc() const noexcept { return desc_; }

  /// Forward: in = batch x [nx, ny] dense fields, out = batch x [keep_x, keep_y].
  /// Inverse: in = batch x [keep_x, keep_y] spectra, out = batch x [nx, ny].
  void execute(std::span<const c32> in, std::span<c32> out, std::size_t batch) const;

  [[nodiscard]] std::size_t in_field_elems() const noexcept;
  [[nodiscard]] std::size_t out_field_elems() const noexcept;

  /// Pruned real FLOPs per field.
  [[nodiscard]] std::uint64_t flops_per_field() const noexcept;

 private:
  void execute_fused(std::span<const c32> in, std::span<c32> out, std::size_t batch) const;

  Plan2dDesc desc_;
  FftPlan along_x_;  // strided stage over DimX
  FftPlan along_y_;  // contiguous stage over DimY
};

}  // namespace turbofno::fft
