// Batched 2D FFT with per-axis truncation / zero padding.
//
// Layout convention (matches the FNO tensors): a 2D field is [DimX, DimY]
// row-major, DimY contiguous.  The 2D transform is two 1D stages:
//
//   stage 1: FFT along X with output truncation to keep_x rows — the
//            paper's "first FFT stage along the width" which writes only
//            the dimX/DimX fraction back (Fig 4);
//   stage 2: FFT along Y (contiguous) on the surviving keep_x rows with
//            output truncation to keep_y bins.
//
// Inverse runs the stages in the opposite order with zero-padded inputs.
//
// The X stage has two schedules (same arithmetic, bitwise-identical
// results).  The default transpose-based schedule blocks the field into
// column slabs, transposes each slab with the SIMD 4x4 tile kernel, runs
// the transforms over contiguous rows, and transposes only the surviving
// keep_x rows back (forward) / scatters the zero-padded columns (inverse).
// The legacy schedule runs one stride-DimY transform per column; it walks
// a full cache line per element at FNO sizes and is kept only for A/B
// benching behind TURBOFNO_FFT2D_TRANSPOSE=0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "fft/plan.hpp"
#include "tensor/complex.hpp"

namespace turbofno::fft {

/// True when the transpose-based X-stage schedule is active.  Defaults to
/// the TURBOFNO_FFT2D_TRANSPOSE environment variable (unset means on); the
/// API override below wins over the environment.
[[nodiscard]] bool fft2d_transpose_enabled() noexcept;

/// Forces the X-stage schedule choice at runtime (A/B benchmarks, tests).
void set_fft2d_transpose(bool enabled) noexcept;

/// Applies a 1D plan along the X (row) axis of `fields` row-major fields
/// with DimY-contiguous layout: `in` holds fields x [nonzero_or_n, ny]
/// and `out` receives fields x [keep_or_n, ny]; each of the ny columns of a
/// field is one transform.  Dispatches between the transpose-based and the
/// per-column schedule (see file header).  Shared by FftPlan2d and the
/// fused 2D pipelines' X stages; in and out must not overlap.
void fft2d_x_stage(const FftPlan& plan, const c32* in, c32* out, std::size_t fields,
                   std::size_t ny);

struct Plan2dDesc {
  std::size_t nx = 0;       // DimX
  std::size_t ny = 0;       // DimY
  Direction dir = Direction::Forward;
  std::size_t keep_x = 0;   // forward: rows kept; inverse: nonzero rows
  std::size_t keep_y = 0;   // forward: bins kept;  inverse: nonzero bins
  bool scale_inverse = true;

  [[nodiscard]] std::size_t keep_x_or_nx() const noexcept { return keep_x == 0 ? nx : keep_x; }
  [[nodiscard]] std::size_t keep_y_or_ny() const noexcept { return keep_y == 0 ? ny : keep_y; }
};

class FftPlan2d {
 public:
  explicit FftPlan2d(Plan2dDesc desc);

  [[nodiscard]] const Plan2dDesc& desc() const noexcept { return desc_; }

  /// Forward: in = batch x [nx, ny] dense fields, out = batch x [keep_x, keep_y].
  /// Inverse: in = batch x [keep_x, keep_y] spectra, out = batch x [nx, ny].
  void execute(std::span<const c32> in, std::span<c32> out, std::size_t batch) const;

  [[nodiscard]] std::size_t in_field_elems() const noexcept;
  [[nodiscard]] std::size_t out_field_elems() const noexcept;

  /// Pruned real FLOPs per field.
  [[nodiscard]] std::uint64_t flops_per_field() const noexcept;

 private:
  Plan2dDesc desc_;
  FftPlan along_x_;  // strided stage over DimX
  FftPlan along_y_;  // contiguous stage over DimY
};

}  // namespace turbofno::fft
