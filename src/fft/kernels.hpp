// Backend-templated FFT butterfly kernels.
//
// The Stockham radix-2/radix-4 passes and the pruned-DIF block butterfly
// live here, parameterized on a simd backend (tensor/simd.hpp), so:
//   - stockham.cpp / dif_pruned.cpp instantiate them with simd::Active,
//   - the SIMD micro bench and parity tests can instantiate the scalar and
//     AVX2 backends side by side in one binary.
//
// Vectorization strategy: every kernel's innermost loop runs over a
// contiguous run of butterflies (the q-loop over `s` adjacent outputs in
// Stockham, the j-loop over a block prefix in the pruned DIF) using the
// backend's *packed* complex vectors (B::pvec, AoS order): butterflies are
// add/sub dominated, which packed lanes do shuffle-free, and the twiddle
// multiply is a single fmaddsub sequence.  Sub-lane passes (s < B::planes,
// i.e. the early stages of every transform) are transposed to lane-major
// form: each vector carries the same butterfly leg of several consecutive p
// groups and the outputs are shuffled back with the backend's zip/4x4
// transpose primitives, so they run packed instead of on the scalar tail.
// Remaining short runs fall through to the scalar tail, which is
// bit-identical to the seed's scalar code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/complex.hpp"
#include "tensor/simd.hpp"

namespace turbofno::fft::kernels {

/// One DIF-Stockham radix-2 pass: combines pairs (p, p+l) with stride s into
/// an interleaved output.  Data flows src -> dst; after all passes the
/// result is in natural order.  `w` = twiddles for sub-transform length 2l.
///
/// The j == 0 twiddle is 1 + 0i; the p == 0 iteration is peeled so the
/// common case avoids a complex multiply.
template <class B, bool Inverse>
void pass_radix2(const c32* src, c32* dst, std::size_t l, std::size_t s,
                 std::span<const c32> w) {
  using P = typename B::pvec;
  if constexpr (B::planes == 4) {
    // Sub-lane strides (s < planes): the q-loop is shorter than a vector, so
    // run lane-major over p instead — each packed vector holds butterflies
    // from `planes / s` consecutive p groups, with the twiddles gathered to
    // match and the outputs shuffled back to the interleaved dst layout.
    // The twiddle values are the same table entries the scalar tail reads
    // (w[0] == 1, so the peeled p == 0 group folds into the vector loop
    // exactly).
    if (s == 1 && l >= 4) {
      const c32* sa = src;
      const c32* sb = src + l;
      std::size_t p = 0;
      for (; p + 4 <= l; p += 4) {
        const P a = B::pload(sa + p);
        const P b = B::pload(sb + p);
        const P sum = B::padd(a, b);
        const P dif = B::pcmul(B::psub(a, b), B::pload(w.data() + p));
        // dst layout per p: [sum_p, dif_p] at 2p — interleave lanes back.
        B::pstore(dst + 2 * p, B::pzip_lo(sum, dif));
        B::pstore(dst + 2 * p + 4, B::pzip_hi(sum, dif));
      }
      for (; p < l; ++p) {
        const c32 a = sa[p];
        const c32 b = sb[p];
        dst[2 * p] = a + b;
        dst[2 * p + 1] = (a - b) * w[p];
      }
      return;
    }
    if (s == 2 && l >= 2) {
      std::size_t p = 0;
      for (; p + 2 <= l; p += 2) {
        const P a = B::pload(src + 2 * p);            // p:(q0,q1), p+1:(q0,q1)
        const P b = B::pload(src + 2 * (p + l));
        const P sum = B::padd(a, b);
        const P wv = B::pset4(w[p], w[p], w[p + 1], w[p + 1]);
        const P dif = B::pcmul(B::psub(a, b), wv);
        // dst layout per p: [sum_p(2), dif_p(2)] at 4p — pair interleave.
        B::pstore(dst + 4 * p, B::pzip_pair_lo(sum, dif));
        B::pstore(dst + 4 * p + 4, B::pzip_pair_hi(sum, dif));
      }
      for (; p < l; ++p) {
        for (std::size_t q = 0; q < 2; ++q) {
          const c32 a = src[2 * p + q];
          const c32 b = src[2 * (p + l) + q];
          dst[4 * p + q] = a + b;
          dst[4 * p + 2 + q] = (a - b) * w[p];
        }
      }
      return;
    }
  }
  {
    const c32* sa = src;
    const c32* sb = src + s * l;
    c32* d0 = dst;
    c32* d1 = dst + s;
    std::size_t q = 0;
    for (; q + B::planes <= s; q += B::planes) {
      const P a = B::pload(sa + q);
      const P b = B::pload(sb + q);
      B::pstore(d0 + q, B::padd(a, b));
      B::pstore(d1 + q, B::psub(a, b));
    }
    for (; q < s; ++q) {
      const c32 a = sa[q];
      const c32 b = sb[q];
      d0[q] = a + b;
      d1[q] = a - b;
    }
  }
  for (std::size_t p = 1; p < l; ++p) {
    const c32 wp = w[p];
    const P wv = B::pset1(wp);
    const c32* sa = src + s * p;
    const c32* sb = src + s * (p + l);
    c32* d0 = dst + s * 2 * p;
    c32* d1 = d0 + s;
    std::size_t q = 0;
    for (; q + B::planes <= s; q += B::planes) {
      const P a = B::pload(sa + q);
      const P b = B::pload(sb + q);
      B::pstore(d0 + q, B::padd(a, b));
      B::pstore(d1 + q, B::pcmul(B::psub(a, b), wv));
    }
    for (; q < s; ++q) {
      const c32 a = sa[q];
      const c32 b = sb[q];
      d0[q] = a + b;
      d1[q] = (a - b) * wp;
    }
  }
}

/// One DIF-Stockham radix-4 pass over a current sub-transform length L = 4*l:
/// reads x[p + j*l] (j = 0..3, stride s), writes the four interleaved
/// outputs at 4p..4p+3.  The quarter-turn factor is -i forward / +i inverse.
/// `w` = twiddles for length L (first half of the circle; 2p/3p fold with
/// W(j + L/2) = -W(j)).
///
/// The p == 0 iteration (w1 = w2 = w3 = 1) is peeled out of the loop, so the
/// most common butterfly group pays no twiddle multiplies and the main loop
/// carries no per-iteration branch.
template <class B, bool Inverse>
void pass_radix4(const c32* src, c32* dst, std::size_t l, std::size_t s,
                 std::span<const c32> w) {
  using P = typename B::pvec;
  const std::size_t half = 2 * l;  // = L / 2

  auto tw_at = [&](std::size_t j) -> c32 { return j < half ? w[j] : -w[j - half]; };
  auto quarter = [](P v) { return Inverse ? B::pmul_pos_i(v) : B::pmul_neg_i(v); };

  if constexpr (B::planes == 4) {
    // s == 1 is the first pass of every mixed-radix transform and used to run
    // entirely on the scalar tail.  Lane-major form: one vector holds the
    // same butterfly leg for four consecutive p, the twiddles (table-exact,
    // including the 1-values of the p == 0 group) are gathered per leg, and
    // an in-register 4x4 transpose turns the four result legs back into the
    // four interleaved per-p output quartets.
    if (s == 1 && l >= 4) {
      std::size_t p = 0;
      for (; p + 4 <= l; p += 4) {
        const P x0 = B::pload(src + p);
        const P x1 = B::pload(src + p + l);
        const P x2 = B::pload(src + p + 2 * l);
        const P x3 = B::pload(src + p + 3 * l);
        const P t0 = B::padd(x0, x2);
        const P t1 = B::psub(x0, x2);
        const P t2 = B::padd(x1, x3);
        const P t3 = quarter(B::psub(x1, x3));
        P r0 = B::padd(t0, t2);
        P r1 = B::pcmul(B::padd(t1, t3), B::pload(w.data() + p));
        P r2 = B::pcmul(B::psub(t0, t2), B::pset4(tw_at(2 * p), tw_at(2 * p + 2),
                                                  tw_at(2 * p + 4), tw_at(2 * p + 6)));
        P r3 = B::pcmul(B::psub(t1, t3), B::pset4(tw_at(3 * p), tw_at(3 * p + 3),
                                                  tw_at(3 * p + 6), tw_at(3 * p + 9)));
        B::ptranspose4(r0, r1, r2, r3);
        B::pstore(dst + 4 * p, r0);
        B::pstore(dst + 4 * p + 4, r1);
        B::pstore(dst + 4 * p + 8, r2);
        B::pstore(dst + 4 * p + 12, r3);
      }
      for (; p < l; ++p) {
        const c32 a = src[p];
        const c32 b = src[p + l];
        const c32 c = src[p + 2 * l];
        const c32 d = src[p + 3 * l];
        const c32 t0 = a + c;
        const c32 t1 = a - c;
        const c32 t2 = b + d;
        const c32 t3 = Inverse ? mul_pos_i(b - d) : mul_neg_i(b - d);
        dst[4 * p] = t0 + t2;
        dst[4 * p + 1] = (t1 + t3) * tw_at(p);
        dst[4 * p + 2] = (t0 - t2) * tw_at(2 * p);
        dst[4 * p + 3] = (t1 - t3) * tw_at(3 * p);
      }
      return;
    }
    // s == 2 never occurs in the mixed-radix schedule (s multiplies by 4
    // between radix-4 passes) — the generic path below covers it if a
    // future driver produces one.
  }

  {
    // p == 0: all twiddles are 1, pure butterfly.
    const c32* s0 = src;
    const c32* s1 = src + s * l;
    const c32* s2 = src + s * 2 * l;
    const c32* s3 = src + s * 3 * l;
    c32* d0 = dst;
    c32* d1 = d0 + s;
    c32* d2 = d1 + s;
    c32* d3 = d2 + s;
    std::size_t q = 0;
    for (; q + B::planes <= s; q += B::planes) {
      const P t0 = B::padd(B::pload(s0 + q), B::pload(s2 + q));
      const P t1 = B::psub(B::pload(s0 + q), B::pload(s2 + q));
      const P t2 = B::padd(B::pload(s1 + q), B::pload(s3 + q));
      const P t3 = quarter(B::psub(B::pload(s1 + q), B::pload(s3 + q)));
      B::pstore(d0 + q, B::padd(t0, t2));
      B::pstore(d1 + q, B::padd(t1, t3));
      B::pstore(d2 + q, B::psub(t0, t2));
      B::pstore(d3 + q, B::psub(t1, t3));
    }
    for (; q < s; ++q) {
      const c32 a = s0[q];
      const c32 b = s1[q];
      const c32 c = s2[q];
      const c32 d = s3[q];
      const c32 t0 = a + c;
      const c32 t1 = a - c;
      const c32 t2 = b + d;
      const c32 t3 = Inverse ? mul_pos_i(b - d) : mul_neg_i(b - d);
      d0[q] = t0 + t2;
      d1[q] = t1 + t3;
      d2[q] = t0 - t2;
      d3[q] = t1 - t3;
    }
  }

  for (std::size_t p = 1; p < l; ++p) {
    const c32 w1 = tw_at(p);
    const c32 w2 = tw_at(2 * p);
    const c32 w3 = tw_at(3 * p);
    const P w1v = B::pset1(w1);
    const P w2v = B::pset1(w2);
    const P w3v = B::pset1(w3);
    const c32* s0 = src + s * p;
    const c32* s1 = src + s * (p + l);
    const c32* s2 = src + s * (p + 2 * l);
    const c32* s3 = src + s * (p + 3 * l);
    c32* d0 = dst + s * 4 * p;
    c32* d1 = d0 + s;
    c32* d2 = d1 + s;
    c32* d3 = d2 + s;
    std::size_t q = 0;
    for (; q + B::planes <= s; q += B::planes) {
      const P t0 = B::padd(B::pload(s0 + q), B::pload(s2 + q));
      const P t1 = B::psub(B::pload(s0 + q), B::pload(s2 + q));
      const P t2 = B::padd(B::pload(s1 + q), B::pload(s3 + q));
      const P t3 = quarter(B::psub(B::pload(s1 + q), B::pload(s3 + q)));
      B::pstore(d0 + q, B::padd(t0, t2));
      B::pstore(d1 + q, B::pcmul(B::padd(t1, t3), w1v));
      B::pstore(d2 + q, B::pcmul(B::psub(t0, t2), w2v));
      B::pstore(d3 + q, B::pcmul(B::psub(t1, t3), w3v));
    }
    for (; q < s; ++q) {
      const c32 a = s0[q];
      const c32 b = s1[q];
      const c32 c = s2[q];
      const c32 d = s3[q];
      const c32 t0 = a + c;
      const c32 t1 = a - c;
      const c32 t2 = b + d;
      const c32 t3 = Inverse ? mul_pos_i(b - d) : mul_neg_i(b - d);
      d0[q] = t0 + t2;
      d1[q] = (t1 + t3) * w1;
      d2[q] = (t0 - t2) * w2;
      d3[q] = (t1 - t3) * w3;
    }
  }
}

/// One pruned-DIF block butterfly with both prunings (see dif_pruned.cpp for
/// the derivation):
///
///   x[0 .. half)        -> even-bin half (sums)
///   x[half .. 2*half)   -> odd-bin half (diffs * twiddle)
///
/// `z` is the nonzero prefix of this block (uniform across blocks of a
/// stage).  `need_odd == false` skips every diff; the even half is then
/// written only where the sum differs from a plain copy.  All three loops
/// run over contiguous j with contiguous twiddles, so each is a straight
/// packed-vector sweep.  Returns the unit-op count (identical to the scalar
/// accounting).
template <class B>
inline std::uint64_t block_butterfly(c32* x, std::size_t half, std::size_t z, bool need_odd,
                                     std::span<const c32> w) {
  using P = typename B::pvec;
  const std::size_t full_end = z > half ? z - half : 0;  // both inputs nonzero
  const std::size_t copy_end = z < half ? z : half;      // upper input zero

  if (need_odd) {
    // j == 0 (twiddle == 1) peeled off the full region.
    std::size_t j = 0;
    if (full_end > 0) {
      const c32 a = x[0];
      const c32 b = x[half];
      x[0] = a + b;
      x[half] = a - b;
      j = 1;
    }
    for (; j + B::planes <= full_end; j += B::planes) {
      const P a = B::pload(x + j);
      const P b = B::pload(x + j + half);
      B::pstore(x + j, B::padd(a, b));
      B::pstore(x + j + half, B::pcmul(B::psub(a, b), B::pload(w.data() + j)));
    }
    for (; j < full_end; ++j) {
      const c32 a = x[j];
      const c32 b = x[j + half];
      x[j] = a + b;
      x[j + half] = (a - b) * w[j];
    }
    // b == 0: even output is already a (in place), odd is a twiddle scale.
    j = full_end;
    for (; j + B::planes <= copy_end; j += B::planes) {
      B::pstore(x + j + half, B::pcmul(B::pload(x + j), B::pload(w.data() + j)));
    }
    for (; j < copy_end; ++j) {
      x[j + half] = x[j] * w[j];
    }
    // j in [copy_end, half): both inputs zero; outputs remain zero.
    return 2 * static_cast<std::uint64_t>(full_end) +
           static_cast<std::uint64_t>(copy_end - full_end);
  }

  // Odd subtree pruned: only sums are needed, and only where b != 0.
  std::size_t j = 0;
  for (; j + B::planes <= full_end; j += B::planes) {
    B::pstore(x + j, B::padd(B::pload(x + j), B::pload(x + j + half)));
  }
  for (; j < full_end; ++j) {
    x[j] = x[j] + x[j + half];
  }
  // b == 0 region: x[j] already holds the sum.
  return full_end;
}

}  // namespace turbofno::fft::kernels
