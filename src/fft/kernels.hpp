// Backend-templated FFT butterfly kernels.
//
// The Stockham radix-2/radix-4 passes and the pruned-DIF block butterfly
// live here, parameterized on a simd backend (tensor/simd.hpp), so:
//   - stockham.cpp / dif_pruned.cpp instantiate them with simd::Active,
//   - the SIMD micro bench and parity tests can instantiate the scalar and
//     AVX2 backends side by side in one binary.
//
// Vectorization strategy: every kernel's innermost loop runs over a
// contiguous run of butterflies (the q-loop over `s` adjacent outputs in
// Stockham, the j-loop over a block prefix in the pruned DIF) using the
// backend's *packed* complex vectors (B::pvec, AoS order): butterflies are
// add/sub dominated, which packed lanes do shuffle-free, and the twiddle
// multiply is a single fmaddsub sequence.  Runs shorter than a vector fall
// through to the scalar tail, which is bit-identical to the seed's scalar
// code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/complex.hpp"
#include "tensor/simd.hpp"

namespace turbofno::fft::kernels {

/// One DIF-Stockham radix-2 pass: combines pairs (p, p+l) with stride s into
/// an interleaved output.  Data flows src -> dst; after all passes the
/// result is in natural order.  `w` = twiddles for sub-transform length 2l.
///
/// The j == 0 twiddle is 1 + 0i; the p == 0 iteration is peeled so the
/// common case avoids a complex multiply.
template <class B, bool Inverse>
void pass_radix2(const c32* src, c32* dst, std::size_t l, std::size_t s,
                 std::span<const c32> w) {
  using P = typename B::pvec;
  {
    const c32* sa = src;
    const c32* sb = src + s * l;
    c32* d0 = dst;
    c32* d1 = dst + s;
    std::size_t q = 0;
    for (; q + B::planes <= s; q += B::planes) {
      const P a = B::pload(sa + q);
      const P b = B::pload(sb + q);
      B::pstore(d0 + q, B::padd(a, b));
      B::pstore(d1 + q, B::psub(a, b));
    }
    for (; q < s; ++q) {
      const c32 a = sa[q];
      const c32 b = sb[q];
      d0[q] = a + b;
      d1[q] = a - b;
    }
  }
  for (std::size_t p = 1; p < l; ++p) {
    const c32 wp = w[p];
    const P wv = B::pset1(wp);
    const c32* sa = src + s * p;
    const c32* sb = src + s * (p + l);
    c32* d0 = dst + s * 2 * p;
    c32* d1 = d0 + s;
    std::size_t q = 0;
    for (; q + B::planes <= s; q += B::planes) {
      const P a = B::pload(sa + q);
      const P b = B::pload(sb + q);
      B::pstore(d0 + q, B::padd(a, b));
      B::pstore(d1 + q, B::pcmul(B::psub(a, b), wv));
    }
    for (; q < s; ++q) {
      const c32 a = sa[q];
      const c32 b = sb[q];
      d0[q] = a + b;
      d1[q] = (a - b) * wp;
    }
  }
}

/// One DIF-Stockham radix-4 pass over a current sub-transform length L = 4*l:
/// reads x[p + j*l] (j = 0..3, stride s), writes the four interleaved
/// outputs at 4p..4p+3.  The quarter-turn factor is -i forward / +i inverse.
/// `w` = twiddles for length L (first half of the circle; 2p/3p fold with
/// W(j + L/2) = -W(j)).
///
/// The p == 0 iteration (w1 = w2 = w3 = 1) is peeled out of the loop, so the
/// most common butterfly group pays no twiddle multiplies and the main loop
/// carries no per-iteration branch.
template <class B, bool Inverse>
void pass_radix4(const c32* src, c32* dst, std::size_t l, std::size_t s,
                 std::span<const c32> w) {
  using P = typename B::pvec;
  const std::size_t half = 2 * l;  // = L / 2

  auto tw_at = [&](std::size_t j) -> c32 { return j < half ? w[j] : -w[j - half]; };
  auto quarter = [](P v) { return Inverse ? B::pmul_pos_i(v) : B::pmul_neg_i(v); };

  {
    // p == 0: all twiddles are 1, pure butterfly.
    const c32* s0 = src;
    const c32* s1 = src + s * l;
    const c32* s2 = src + s * 2 * l;
    const c32* s3 = src + s * 3 * l;
    c32* d0 = dst;
    c32* d1 = d0 + s;
    c32* d2 = d1 + s;
    c32* d3 = d2 + s;
    std::size_t q = 0;
    for (; q + B::planes <= s; q += B::planes) {
      const P t0 = B::padd(B::pload(s0 + q), B::pload(s2 + q));
      const P t1 = B::psub(B::pload(s0 + q), B::pload(s2 + q));
      const P t2 = B::padd(B::pload(s1 + q), B::pload(s3 + q));
      const P t3 = quarter(B::psub(B::pload(s1 + q), B::pload(s3 + q)));
      B::pstore(d0 + q, B::padd(t0, t2));
      B::pstore(d1 + q, B::padd(t1, t3));
      B::pstore(d2 + q, B::psub(t0, t2));
      B::pstore(d3 + q, B::psub(t1, t3));
    }
    for (; q < s; ++q) {
      const c32 a = s0[q];
      const c32 b = s1[q];
      const c32 c = s2[q];
      const c32 d = s3[q];
      const c32 t0 = a + c;
      const c32 t1 = a - c;
      const c32 t2 = b + d;
      const c32 t3 = Inverse ? mul_pos_i(b - d) : mul_neg_i(b - d);
      d0[q] = t0 + t2;
      d1[q] = t1 + t3;
      d2[q] = t0 - t2;
      d3[q] = t1 - t3;
    }
  }

  for (std::size_t p = 1; p < l; ++p) {
    const c32 w1 = tw_at(p);
    const c32 w2 = tw_at(2 * p);
    const c32 w3 = tw_at(3 * p);
    const P w1v = B::pset1(w1);
    const P w2v = B::pset1(w2);
    const P w3v = B::pset1(w3);
    const c32* s0 = src + s * p;
    const c32* s1 = src + s * (p + l);
    const c32* s2 = src + s * (p + 2 * l);
    const c32* s3 = src + s * (p + 3 * l);
    c32* d0 = dst + s * 4 * p;
    c32* d1 = d0 + s;
    c32* d2 = d1 + s;
    c32* d3 = d2 + s;
    std::size_t q = 0;
    for (; q + B::planes <= s; q += B::planes) {
      const P t0 = B::padd(B::pload(s0 + q), B::pload(s2 + q));
      const P t1 = B::psub(B::pload(s0 + q), B::pload(s2 + q));
      const P t2 = B::padd(B::pload(s1 + q), B::pload(s3 + q));
      const P t3 = quarter(B::psub(B::pload(s1 + q), B::pload(s3 + q)));
      B::pstore(d0 + q, B::padd(t0, t2));
      B::pstore(d1 + q, B::pcmul(B::padd(t1, t3), w1v));
      B::pstore(d2 + q, B::pcmul(B::psub(t0, t2), w2v));
      B::pstore(d3 + q, B::pcmul(B::psub(t1, t3), w3v));
    }
    for (; q < s; ++q) {
      const c32 a = s0[q];
      const c32 b = s1[q];
      const c32 c = s2[q];
      const c32 d = s3[q];
      const c32 t0 = a + c;
      const c32 t1 = a - c;
      const c32 t2 = b + d;
      const c32 t3 = Inverse ? mul_pos_i(b - d) : mul_neg_i(b - d);
      d0[q] = t0 + t2;
      d1[q] = (t1 + t3) * w1;
      d2[q] = (t0 - t2) * w2;
      d3[q] = (t1 - t3) * w3;
    }
  }
}

/// One pruned-DIF block butterfly with both prunings (see dif_pruned.cpp for
/// the derivation):
///
///   x[0 .. half)        -> even-bin half (sums)
///   x[half .. 2*half)   -> odd-bin half (diffs * twiddle)
///
/// `z` is the nonzero prefix of this block (uniform across blocks of a
/// stage).  `need_odd == false` skips every diff; the even half is then
/// written only where the sum differs from a plain copy.  All three loops
/// run over contiguous j with contiguous twiddles, so each is a straight
/// packed-vector sweep.  Returns the unit-op count (identical to the scalar
/// accounting).
template <class B>
inline std::uint64_t block_butterfly(c32* x, std::size_t half, std::size_t z, bool need_odd,
                                     std::span<const c32> w) {
  using P = typename B::pvec;
  const std::size_t full_end = z > half ? z - half : 0;  // both inputs nonzero
  const std::size_t copy_end = z < half ? z : half;      // upper input zero

  if (need_odd) {
    // j == 0 (twiddle == 1) peeled off the full region.
    std::size_t j = 0;
    if (full_end > 0) {
      const c32 a = x[0];
      const c32 b = x[half];
      x[0] = a + b;
      x[half] = a - b;
      j = 1;
    }
    for (; j + B::planes <= full_end; j += B::planes) {
      const P a = B::pload(x + j);
      const P b = B::pload(x + j + half);
      B::pstore(x + j, B::padd(a, b));
      B::pstore(x + j + half, B::pcmul(B::psub(a, b), B::pload(w.data() + j)));
    }
    for (; j < full_end; ++j) {
      const c32 a = x[j];
      const c32 b = x[j + half];
      x[j] = a + b;
      x[j + half] = (a - b) * w[j];
    }
    // b == 0: even output is already a (in place), odd is a twiddle scale.
    j = full_end;
    for (; j + B::planes <= copy_end; j += B::planes) {
      B::pstore(x + j + half, B::pcmul(B::pload(x + j), B::pload(w.data() + j)));
    }
    for (; j < copy_end; ++j) {
      x[j + half] = x[j] * w[j];
    }
    // j in [copy_end, half): both inputs zero; outputs remain zero.
    return 2 * static_cast<std::uint64_t>(full_end) +
           static_cast<std::uint64_t>(copy_end - full_end);
  }

  // Odd subtree pruned: only sums are needed, and only where b != 0.
  std::size_t j = 0;
  for (; j + B::planes <= full_end; j += B::planes) {
    B::pstore(x + j, B::padd(B::pload(x + j), B::pload(x + j + half)));
  }
  for (; j < full_end; ++j) {
    x[j] = x[j] + x[j + half];
  }
  // b == 0 region: x[j] already holds the sum.
  return full_end;
}

}  // namespace turbofno::fft::kernels
