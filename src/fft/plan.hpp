// Batched 1D FFT plans with built-in truncation and zero padding.
//
// This is the public FFT API of TurboFNO.  A plan is described by four
// quantities (mirroring the paper's built-in filtering, Section 3.3):
//
//   n        transform length (power of two)
//   dir      Forward | Inverse
//   keep     outputs produced: the first `keep` natural-order bins
//            ("truncation"; keep == n means a full transform)
//   nonzero  stored input prefix: elements [nonzero, n) are implicit zeros
//            ("zero padding"; nonzero == n means a dense input)
//
// Unlike cuFFT (which has no native filtering; the paper's Section 1
// limitation #2), truncation and padding here change the kernel's own
// global load/store loops and prune the butterfly network, so no separate
// memory-copy pass ever materializes the full-length intermediate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/complex.hpp"

namespace turbofno::fft {

enum class Direction { Forward, Inverse };

struct PlanDesc {
  std::size_t n = 0;
  Direction dir = Direction::Forward;
  std::size_t keep = 0;     // 0 => n
  std::size_t nonzero = 0;  // 0 => n
  bool scale_inverse = true;

  [[nodiscard]] std::size_t keep_or_n() const noexcept { return keep == 0 ? n : keep; }
  [[nodiscard]] std::size_t nonzero_or_n() const noexcept { return nonzero == 0 ? n : nonzero; }
};

/// Memory layout of a batched execution.  Element strides are in c32 units;
/// batch strides of 0 mean "densely packed" (nonzero / keep elements apart).
struct ExecLayout {
  std::ptrdiff_t in_elem_stride = 1;
  std::ptrdiff_t in_batch_stride = 0;
  std::ptrdiff_t out_elem_stride = 1;
  std::ptrdiff_t out_batch_stride = 0;
};

class FftPlan {
 public:
  explicit FftPlan(PlanDesc desc);

  [[nodiscard]] const PlanDesc& desc() const noexcept { return desc_; }

  /// Densely packed batched transform: `in` holds batch signals of
  /// nonzero_or_n() elements each; `out` receives batch x keep_or_n().
  /// In-place operation (in.data() == out.data()) is supported only when the
  /// output signal is not longer than the input signal.
  void execute(std::span<const c32> in, std::span<c32> out, std::size_t batch) const;

  /// Fully general strided execution (used for along-X transforms in 2D and
  /// the hidden-dimension-aligned FFT variant of the fused kernel).
  void execute_strided(const c32* in, c32* out, std::size_t batch, const ExecLayout& layout) const;

  /// Single-signal transform into/out of a caller-provided n-element scratch
  /// buffer; exposed so fused pipelines can keep data tile-resident.
  /// Loads `nonzero` elements from `in` (stride in_elem_stride), transforms in
  /// `work` (size >= n), writes keep bins to `out` (stride out_elem_stride).
  void execute_one(const c32* in, std::ptrdiff_t in_elem_stride, c32* out,
                   std::ptrdiff_t out_elem_stride, std::span<c32> work) const;

  /// Scratch elements execute_one needs (the n-point signal plus the
  /// Stockham ping-pong buffer); callers sizing arena requests use this
  /// instead of hard-coding 2 * n.
  [[nodiscard]] std::size_t scratch_elems() const noexcept { return 2 * desc_.n; }

  /// Unit butterfly ops per signal under the Figure-5 counting convention.
  [[nodiscard]] std::uint64_t unit_ops_per_signal() const noexcept { return unit_ops_; }
  /// Real FLOPs per signal (pruned).
  [[nodiscard]] std::uint64_t flops_per_signal() const noexcept { return flops_; }
  /// Bytes read / written from the caller's buffers per signal.
  [[nodiscard]] std::uint64_t bytes_read_per_signal() const noexcept;
  [[nodiscard]] std::uint64_t bytes_written_per_signal() const noexcept;

  /// True when this plan takes the pruned DIF path (any filtering active).
  [[nodiscard]] bool pruned() const noexcept { return pruned_; }

 private:
  PlanDesc desc_;
  bool pruned_ = false;
  std::uint64_t unit_ops_ = 0;
  std::uint64_t flops_ = 0;
};

}  // namespace turbofno::fft
