// Analytic operation accounting for pruned FFTs (reproduces Figure 5).
//
// The counter walks the same stage/block/region structure as the executing
// kernel in dif_pruned.cpp without touching data, so tests can assert that
// measured ops == analytic ops for every (n, m, p).
#pragma once

#include <cstddef>
#include <cstdint>

namespace turbofno::fft {

struct OpCount {
  std::uint64_t unit_ops = 0;  // butterfly outputs computed (Fig 5 convention)
  std::uint64_t cmul = 0;      // complex multiplies performed
  std::uint64_t cadd = 0;      // complex additions performed

  [[nodiscard]] std::uint64_t flops() const noexcept { return 6 * cmul + 2 * cadd; }
};

/// Ops of the pruned transform: n-point, first `m` outputs needed, first `p`
/// inputs nonzero.
OpCount count_pruned_ops(std::size_t n, std::size_t m, std::size_t p) noexcept;

/// Ops of the unpruned n-point transform (m == p == n).
OpCount count_full_ops(std::size_t n) noexcept;

/// unit-op fraction retained vs the full transform, e.g. Figure 5's
/// 4-point example: m=1 -> 0.375, m=2 -> 0.75.
double pruned_fraction(std::size_t n, std::size_t m, std::size_t p) noexcept;

}  // namespace turbofno::fft
