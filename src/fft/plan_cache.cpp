#include "fft/plan_cache.hpp"

#include <atomic>
#include <map>
#include <tuple>

#include "runtime/thread_annotations.hpp"

namespace turbofno::fft {

namespace {

// The leading int discriminates the transform kind (kC2c / kR2c / kC2r),
// so real plans can never alias a complex plan of equal shape.
using Key = std::tuple<int, std::size_t, int, std::size_t, std::size_t, bool>;

enum Kind : int { kC2c = 0, kR2c = 1, kC2r = 2 };

Key key_of(const PlanDesc& d) {
  return {kC2c, d.n, static_cast<int>(d.dir), d.keep_or_n(), d.nonzero_or_n(), d.scale_inverse};
}

struct Entry {
  // Type-erased so complex and real plans share one cache (the key's kind
  // field fixes the concrete type each entry was built as).
  std::shared_ptr<const void> plan;
  // Approximate-LRU stamp: refreshed under the reader lock (mutable: hits
  // reach entries through const accessors), so hits never serialize on the
  // writer lock.  Eviction scans for the minimum.
  mutable std::atomic<std::uint64_t> last_use{0};
};

runtime::SharedMutex g_mu;
std::atomic<std::uint64_t> g_tick{0};
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_evictions{0};
std::size_t g_capacity TFNO_GUARDED_BY(g_mu) = 0;
std::map<Key, std::unique_ptr<Entry>> g_cache TFNO_GUARDED_BY(g_mu);

void touch(const Entry& e) noexcept {
  e.last_use.store(g_tick.fetch_add(1, std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
}

void evict_over_capacity_locked() TFNO_REQUIRES(g_mu) {
  while (g_capacity != 0 && g_cache.size() > g_capacity) {
    auto victim = g_cache.begin();
    for (auto it = g_cache.begin(); it != g_cache.end(); ++it) {
      if (it->second->last_use.load(std::memory_order_relaxed) <
          victim->second->last_use.load(std::memory_order_relaxed)) {
        victim = it;
      }
    }
    g_cache.erase(victim);
    g_evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

// Shared lookup/insert path: `build` runs only on a miss, OUTSIDE any lock,
// so concurrent readers never stall behind a plan construction (op-count
// analysis + twiddle warm-up); insertion re-checks.  Racing threads may
// build the same descriptor twice; the loser's build is discarded and
// counted as a hit, so the miss counter still equals the number of distinct
// plans ever inserted.
template <class Build>
std::shared_ptr<const void> acquire_entry(const Key& k, const Build& build) {
  {
    const runtime::ReaderLock lock(g_mu);
    // Const access: readers may only touch() (an atomic) through the map.
    const auto& c = g_cache;
    const auto it = c.find(k);
    if (it != c.end()) {
      touch(*it->second);
      g_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second->plan;
    }
  }
  std::shared_ptr<const void> built = build();
  const runtime::WriterLock lock(g_mu);
  auto it = g_cache.find(k);
  if (it == g_cache.end()) {
    g_misses.fetch_add(1, std::memory_order_relaxed);
    auto e = std::make_unique<Entry>();
    e->plan = std::move(built);
    touch(*e);
    it = g_cache.emplace(k, std::move(e)).first;
    evict_over_capacity_locked();
  } else {
    touch(*it->second);
    g_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second->plan;
}

}  // namespace

std::shared_ptr<const FftPlan> acquire_plan(const PlanDesc& desc) {
  return std::static_pointer_cast<const FftPlan>(acquire_entry(
      key_of(desc), [&] { return std::make_shared<const FftPlan>(desc); }));
}

std::shared_ptr<const RfftPlan> acquire_rfft_plan(std::size_t n, std::size_t keep) {
  const std::size_t stored = keep == 0 ? n / 2 + 1 : keep;
  const Key k{kR2c, n, static_cast<int>(Direction::Forward), stored, n, true};
  return std::static_pointer_cast<const RfftPlan>(
      acquire_entry(k, [&] { return std::make_shared<const RfftPlan>(n, keep); }));
}

std::shared_ptr<const IrfftPlan> acquire_irfft_plan(std::size_t n, std::size_t nonzero) {
  const std::size_t stored = nonzero == 0 ? n / 2 + 1 : nonzero;
  const Key k{kC2r, n, static_cast<int>(Direction::Inverse), n, stored, true};
  return std::static_pointer_cast<const IrfftPlan>(
      acquire_entry(k, [&] { return std::make_shared<const IrfftPlan>(n, nonzero); }));
}

namespace {
// Pins for cached_plan's process-lifetime contract.  Function-local statics
// are invisible to the thread-safety analysis, so they live here, guarded.
runtime::Mutex g_pin_mu;
std::map<Key, std::shared_ptr<const FftPlan>>& pins() TFNO_REQUIRES(g_pin_mu) {
  static std::map<Key, std::shared_ptr<const FftPlan>>& p =
      *new std::map<Key, std::shared_ptr<const FftPlan>>();
  return p;
}
}  // namespace

const FftPlan& cached_plan(const PlanDesc& desc) {
  // Preserve the historical contract — references from this function stay
  // valid for the process lifetime — even when an eviction capacity is set:
  // the first plan handed out per descriptor is pinned here, immune to LRU
  // eviction and plan_cache_clear().  New code should prefer acquire_plan.
  auto p = acquire_plan(desc);  // counts stats and refreshes the LRU stamp
  const runtime::MutexLock lock(g_pin_mu);
  const auto [it, inserted] = pins().emplace(key_of(desc), std::move(p));
  return *it->second;
}

std::size_t cached_plan_count() noexcept {
  const runtime::ReaderLock lock(g_mu);
  return g_cache.size();
}

PlanCacheStats plan_cache_stats() noexcept {
  PlanCacheStats s;
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.misses = g_misses.load(std::memory_order_relaxed);
  s.evictions = g_evictions.load(std::memory_order_relaxed);
  const runtime::ReaderLock lock(g_mu);
  s.size = g_cache.size();
  s.capacity = g_capacity;
  return s;
}

void plan_cache_reset_stats() noexcept {
  g_hits.store(0, std::memory_order_relaxed);
  g_misses.store(0, std::memory_order_relaxed);
  g_evictions.store(0, std::memory_order_relaxed);
}

void set_plan_cache_capacity(std::size_t max_plans) noexcept {
  const runtime::WriterLock lock(g_mu);
  g_capacity = max_plans;
  evict_over_capacity_locked();
}

void plan_cache_clear() noexcept {
  const runtime::WriterLock lock(g_mu);
  g_evictions.fetch_add(g_cache.size(), std::memory_order_relaxed);
  g_cache.clear();
}

}  // namespace turbofno::fft
