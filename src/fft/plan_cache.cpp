#include "fft/plan_cache.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

namespace turbofno::fft {

namespace {

using Key = std::tuple<std::size_t, int, std::size_t, std::size_t, bool>;

Key key_of(const PlanDesc& d) {
  return {d.n, static_cast<int>(d.dir), d.keep_or_n(), d.nonzero_or_n(), d.scale_inverse};
}

std::mutex g_mu;
std::map<Key, std::unique_ptr<FftPlan>>& cache() {
  static std::map<Key, std::unique_ptr<FftPlan>> c;
  return c;
}

}  // namespace

const FftPlan& cached_plan(const PlanDesc& desc) {
  const std::lock_guard<std::mutex> lock(g_mu);
  auto& c = cache();
  auto it = c.find(key_of(desc));
  if (it == c.end()) {
    it = c.emplace(key_of(desc), std::make_unique<FftPlan>(desc)).first;
  }
  return *it->second;
}

std::size_t cached_plan_count() noexcept {
  const std::lock_guard<std::mutex> lock(g_mu);
  return cache().size();
}

}  // namespace turbofno::fft
