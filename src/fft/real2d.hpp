// Real-input X stage for the 2D pipelines (R2C forward / C2R inverse).
//
// A 2D field is [DimX, DimY] row-major with real samples; the X-axis
// transforms are real-input, so adjacent y-column pairs ride one complex
// transform (the classic two-for-one trick): columns (2p, 2p+1) of the
// float field are exactly the re/im lanes of a c32 column at pair index p,
// one full nx-point C2C transform produces the packed spectrum Z, and an
// O(nx) untangle splits it into the two columns' spectra
//
//   A[k] = (Z[k] + conj(Z[(nx-k) % nx])) / 2        (column 2p)
//   B[k] = (Z[k] - conj(Z[(nx-k) % nx])) / (2i)     (column 2p+1)
//
// of which only the first keep_x bins survive (conjugate-even symmetry
// makes bins above nx/2 redundant; the fused real pipelines keep
// keep_x = modes_x/2 + 1).  The inverse rebuilds Z from two stored
// prefixes — Hermitian-extending each and projecting the DC (and Nyquist,
// when stored) bins real — and one full inverse transform scatters both
// columns at once.
//
// Layout contracts mirror fft/fft2d.hpp: the whole-field entry points
// produce/consume the x-major [keep_x, ny] intermediate, and the tile
// entry points speak the same XStageTileDst/Src protocol the fused 2D
// middle stages are built on (block row r holds the keep_x-bin spectrum of
// column y0 + r, rows packed keep_x apart).
#pragma once

#include <cstddef>

#include "fft/fft2d.hpp"
#include "tensor/complex.hpp"

namespace turbofno::fft {

/// Forward whole-field real X stage: `in` holds `fields` x [nx, ny] real
/// fields, `out` receives fields x [keep_x, ny] spectra (x-major).
/// nx, ny must be powers of two >= 4 resp. >= 2; keep_x <= nx/2 + 1.
void rfft2d_x_stage(std::size_t nx, std::size_t keep_x, const float* in, c32* out,
                    std::size_t fields, std::size_t ny);

/// Inverse whole-field real X stage: `in` holds fields x [nonzero_x, ny]
/// spectra (bins [nonzero_x, nx/2] implicit zeros, upper half Hermitian),
/// `out` receives fields x [nx, ny] real fields.
void irfft2d_x_stage(std::size_t nx, std::size_t nonzero_x, const c32* in, float* out,
                     std::size_t fields, std::size_t ny);

/// Tile-granular forward real X stage: like fft2d_x_stage_to_tiles, but the
/// input fields are real and the y-major destination blocks hold keep_x-bin
/// half-spectra per column.  y0 and g delivered to `dst` are always even
/// (columns pair up), so resolvers may assume whole pairs.
void rfft2d_x_stage_to_tiles(std::size_t nx, std::size_t keep_x, const float* in,
                             std::size_t fields, std::size_t ny, const XStageTileDst& dst);

/// Tile-granular inverse real X stage: reads y-major blocks of
/// nonzero_x-bin half-spectra per column and scatters real columns into the
/// x-major [nx, ny] output fields.
void irfft2d_x_stage_from_tiles(std::size_t nx, std::size_t nonzero_x,
                                const XStageTileSrc& src, float* out, std::size_t fields,
                                std::size_t ny);

}  // namespace turbofno::fft
