#include "fft/dif_pruned.hpp"

#include <algorithm>
#include <cassert>

#include "fft/twiddle.hpp"

namespace turbofno::fft {

std::size_t block_need(std::size_t block_index, std::size_t depth, std::size_t m) noexcept {
  // Block `b` of the depth-d stage holds the bins k with
  // k mod 2^d == bit_reverse(b, d); of those, the ones below m number
  // ceil((m - r) / 2^d).
  const std::size_t r = bit_reverse(block_index, depth);
  const std::size_t stride = std::size_t{1} << depth;
  if (r >= m) return 0;
  return (m - r + stride - 1) >> depth;
}

namespace {

// One block butterfly with both prunings.
//
//   x[start .. start+half)      -> even-bin half (sums)
//   x[start+half .. start+L)    -> odd-bin half (diffs * twiddle)
//
// `z` is the nonzero prefix of this block (uniform across blocks of a stage).
// `need_odd == 0` skips every diff; the even half is then written only where
// the sum differs from a plain copy (i.e. where b != 0).
inline std::uint64_t block_butterfly(c32* x, std::size_t half, std::size_t z,
                                     bool need_odd, std::span<const c32> w) {
  std::uint64_t ops = 0;
  const std::size_t full_end = z > half ? z - half : 0;  // both inputs nonzero
  const std::size_t copy_end = std::min(z, half);        // upper input zero

  if (need_odd) {
    // j == 0 (twiddle == 1) peeled off the full region.
    std::size_t j = 0;
    if (full_end > 0) {
      const c32 a = x[0];
      const c32 b = x[half];
      x[0] = a + b;
      x[half] = a - b;
      ops += 2;
      j = 1;
    }
    for (; j < full_end; ++j) {
      const c32 a = x[j];
      const c32 b = x[j + half];
      x[j] = a + b;
      x[j + half] = (a - b) * w[j];
      ops += 2;
    }
    for (j = full_end; j < copy_end; ++j) {
      // b == 0: even output is already a (in place), odd is a twiddle scale.
      x[j + half] = x[j] * w[j];
      ops += 1;
    }
    // j in [copy_end, half): both inputs zero; outputs remain zero.
  } else {
    // Odd subtree pruned: only sums are needed, and only where b != 0.
    for (std::size_t j = 0; j < full_end; ++j) {
      x[j] = x[j] + x[j + half];
      ops += 1;
    }
    // b == 0 region: x[j] already holds the sum.
  }
  return ops;
}

}  // namespace

std::uint64_t dif_pruned_run(std::span<c32> buf, std::size_t n, std::size_t m, std::size_t p,
                             bool inverse) {
  assert(is_pow2(n));
  assert(buf.size() >= n);
  assert(m >= 1 && m <= n);
  assert(p >= 1 && p <= n);
  const TwiddleTable& tw = twiddles_for(n);

  std::uint64_t ops = 0;
  std::size_t depth = 0;
  for (std::size_t L = n; L >= 2; L /= 2, ++depth) {
    const std::size_t half = L / 2;
    const std::size_t nblocks = n / L;
    const std::size_t z = std::min(p, L);  // nonzero prefix, uniform per stage
    const std::span<const c32> w = inverse ? tw.inverse(L) : tw.forward(L);

    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t need = block_need(b, depth, m);
      if (need == 0) continue;  // whole subtree pruned
      // Even child needs ceil(need/2) bins (>= 1 here), odd child
      // floor(need/2); the odd branch exists iff need >= 2.
      ops += block_butterfly(buf.data() + b * L, half, z, need >= 2, w);
    }
  }
  return ops;
}

void dif_gather(std::span<const c32> buf, std::span<c32> out, std::size_t n, std::size_t m,
                float scale) {
  const std::size_t bits = log2u(n);
  if (scale == 1.0f) {
    for (std::size_t k = 0; k < m; ++k) out[k] = buf[bit_reverse(k, bits)];
  } else {
    for (std::size_t k = 0; k < m; ++k) out[k] = buf[bit_reverse(k, bits)] * scale;
  }
}

}  // namespace turbofno::fft
