#include "fft/dif_pruned.hpp"

#include <algorithm>
#include <cassert>

#include "fft/kernels.hpp"
#include "fft/twiddle.hpp"
#include "tensor/simd.hpp"

namespace turbofno::fft {

std::size_t block_need(std::size_t block_index, std::size_t depth, std::size_t m) noexcept {
  // Block `b` of the depth-d stage holds the bins k with
  // k mod 2^d == bit_reverse(b, d); of those, the ones below m number
  // ceil((m - r) / 2^d).
  const std::size_t r = bit_reverse(block_index, depth);
  const std::size_t stride = std::size_t{1} << depth;
  if (r >= m) return 0;
  return (m - r + stride - 1) >> depth;
}

namespace {

// The block butterfly lives in fft/kernels.hpp (templated on the SIMD
// backend); all three of its inner loops are contiguous-j vector sweeps.
using Backend = simd::Active;

}  // namespace

std::uint64_t dif_pruned_run(std::span<c32> buf, std::size_t n, std::size_t m, std::size_t p,
                             bool inverse) {
  assert(is_pow2(n));
  assert(buf.size() >= n);
  assert(m >= 1 && m <= n);
  assert(p >= 1 && p <= n);
  const TwiddleTable& tw = twiddles_for(n);

  std::uint64_t ops = 0;
  std::size_t depth = 0;
  for (std::size_t L = n; L >= 2; L /= 2, ++depth) {
    const std::size_t half = L / 2;
    const std::size_t nblocks = n / L;
    const std::size_t z = std::min(p, L);  // nonzero prefix, uniform per stage
    const std::span<const c32> w = inverse ? tw.inverse(L) : tw.forward(L);

    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t need = block_need(b, depth, m);
      if (need == 0) continue;  // whole subtree pruned
      // Even child needs ceil(need/2) bins (>= 1 here), odd child
      // floor(need/2); the odd branch exists iff need >= 2.
      ops += kernels::block_butterfly<Backend>(buf.data() + b * L, half, z, need >= 2, w);
    }
  }
  return ops;
}

void dif_gather(std::span<const c32> buf, std::span<c32> out, std::size_t n, std::size_t m,
                float scale) {
  const std::size_t bits = log2u(n);
  if (scale == 1.0f) {
    for (std::size_t k = 0; k < m; ++k) out[k] = buf[bit_reverse(k, bits)];
  } else {
    for (std::size_t k = 0; k < m; ++k) out[k] = buf[bit_reverse(k, bits)] * scale;
  }
}

}  // namespace turbofno::fft
