// O(n^2) reference DFT used as the correctness oracle in tests.
//
// Computed in double precision internally so it is strictly more accurate
// than any kernel under test.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/complex.hpp"

namespace turbofno::fft {

/// out[k] = sum_j in[j] * exp(-2 pi i j k / n), k < out.size().
/// `in` may be shorter than n (implicit zero padding of the tail).
void reference_dft(std::span<const c32> in, std::span<c32> out, std::size_t n);

/// Inverse: out[j] = (1/n) sum_k in[k] * exp(+2 pi i j k / n), j < out.size().
/// `in` may be shorter than n (implicit zero padding).
void reference_idft(std::span<const c32> in, std::span<c32> out, std::size_t n,
                    bool scale = true);

}  // namespace turbofno::fft
