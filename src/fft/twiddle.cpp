#include "fft/twiddle.hpp"

#include <map>
#include <memory>
#include <stdexcept>

#include "runtime/thread_annotations.hpp"

namespace turbofno::fft {

namespace {
// Hoisted out of twiddles_for: function-local statics cannot carry
// guarded_by annotations, namespace-scope globals can.
runtime::SharedMutex g_twiddle_mu;
std::map<std::size_t, std::unique_ptr<TwiddleTable>> g_twiddle_cache
    TFNO_GUARDED_BY(g_twiddle_mu);
}  // namespace

TwiddleTable::TwiddleTable(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("TwiddleTable: size must be a power of two >= 2");
  fwd_.resize(n - 1);
  inv_.resize(n - 1);
  for (std::size_t L = 2; L <= n; L *= 2) {
    const std::size_t off = L / 2 - 1;
    for (std::size_t j = 0; j < L / 2; ++j) {
      const c32 w = twiddle(j, L);
      fwd_[off + j] = w;
      inv_[off + j] = conj(w);
    }
  }
}

const TwiddleTable& twiddles_for(std::size_t n) {
  // Every butterfly kernel calls this, so the hit path must not serialize:
  // concurrent server workers each run thousands of transforms per second.
  // Entries are never removed, so a reference is stable once returned.
  {
    const runtime::ReaderLock lock(g_twiddle_mu);
    const auto& c = g_twiddle_cache;  // const find: shared lock suffices
    const auto it = c.find(n);
    if (it != c.end()) return *it->second;
  }
  const runtime::WriterLock lock(g_twiddle_mu);
  auto it = g_twiddle_cache.find(n);
  if (it == g_twiddle_cache.end()) {
    it = g_twiddle_cache.emplace(n, std::make_unique<TwiddleTable>(n)).first;
  }
  return *it->second;
}

}  // namespace turbofno::fft
