#include "fft/twiddle.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>

namespace turbofno::fft {

TwiddleTable::TwiddleTable(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("TwiddleTable: size must be a power of two >= 2");
  fwd_.resize(n - 1);
  inv_.resize(n - 1);
  for (std::size_t L = 2; L <= n; L *= 2) {
    const std::size_t off = L / 2 - 1;
    for (std::size_t j = 0; j < L / 2; ++j) {
      const c32 w = twiddle(j, L);
      fwd_[off + j] = w;
      inv_[off + j] = conj(w);
    }
  }
}

const TwiddleTable& twiddles_for(std::size_t n) {
  // Every butterfly kernel calls this, so the hit path must not serialize:
  // concurrent server workers each run thousands of transforms per second.
  // Entries are never removed, so a reference is stable once returned.
  static std::shared_mutex mu;
  static std::map<std::size_t, std::unique_ptr<TwiddleTable>> cache;
  {
    const std::shared_lock<std::shared_mutex> lock(mu);
    const auto it = cache.find(n);
    if (it != cache.end()) return *it->second;
  }
  const std::unique_lock<std::shared_mutex> lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, std::make_unique<TwiddleTable>(n)).first;
  }
  return *it->second;
}

}  // namespace turbofno::fft
