// Request/response vocabulary of the batched inference serving layer.
//
// A request is one FNO inference for a registered model: one input field
// of that model's shape (the request's own batch dimension is always 1).
// The server coalesces compatible requests — same model, hence same
// spectral shapes and weights — into dynamic micro-batches that ride the
// fused pipelines' batched entry points, which is where the paper's fused
// FFT-CGEMM-iFFT pass pays off at serving scale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "tensor/complex.hpp"

namespace turbofno::serve {

/// Handle of a model registered with InferenceServer::load_model.
using ModelId = std::size_t;

/// Server-assigned, strictly increasing per accepted submission.
using RequestId = std::uint64_t;

enum class Status {
  Ok,            // output is valid
  Rejected,      // per-model backlog was full at submission
  ShutDown,      // server stopped before this request executed
  InvalidInput,  // input/output size does not match the model's shape
  Shed,          // admission control: the deadline was infeasible at submission
};

[[nodiscard]] std::string_view status_name(Status s) noexcept;

/// Two-level QoS class of a request.  High requests pop ahead of Normal
/// ones when a micro-batch is formed; a starvation guard bounds how long a
/// Normal request can be overtaken (BatchingPolicy::starvation_s).
enum class Priority { High, Normal };

[[nodiscard]] std::string_view priority_name(Priority p) noexcept;

/// Per-request submission options.
struct SubmitOptions {
  Priority priority = Priority::Normal;
  /// Relative completion deadline in seconds (0 = none).  A deadline arms
  /// admission control: if the model's estimated wait at submission already
  /// exceeds it, the request is refused with Status::Shed instead of
  /// queueing doomed work.  Feasibility is judged per QoS class — High
  /// requests count only the High backlog ahead of them, Normal requests
  /// count the whole backlog — so under saturation Normal work sheds first
  /// while feasible High work keeps being admitted.
  double deadline_s = 0.0;
};

/// Knobs of the dynamic micro-batcher.
struct BatchingPolicy {
  /// Largest micro-batch; also each model's initial session capacity
  /// (sessions are elastic, so this is a reservation, not a ceiling on
  /// correctness — just on micro-batch size).
  std::size_t max_batch = 8;
  /// Deadline: a queued request waits at most this long before its model's
  /// queue is flushed as a (possibly partial) micro-batch.
  double max_delay_s = 1e-3;
  /// Per-model backlog bound (both QoS levels combined); submissions
  /// beyond it are Rejected.
  std::size_t queue_capacity = 4096;
  /// Starvation guard: a queued Normal request older than this pops ahead
  /// of younger High requests when a batch is formed.  0 picks the default
  /// of 8 * max_delay_s, floored at 1 ms (so max_delay_s == 0 — pure
  /// flush/size-triggered serving — cannot invert the two-level ordering).
  double starvation_s = 0.0;
  /// Adaptive micro-batch sizing.  When on, the size trigger stops waiting
  /// blindly for max_batch: the speculative launch target is the number of
  /// arrivals expected within max_delay_s (from the per-model arrival-gap
  /// EWMA), so sparse traffic launches small batches immediately instead
  /// of eating the full delay — and under sustained overload (requests
  /// arriving at least as fast as the learned exec_estimate drains them)
  /// micro-batches may grow past max_batch up to max_batch * growth_limit.
  /// Sessions are elastic, so growth is purely a policy decision; staging
  /// buffers grow on demand.  Off by default: micro_batch <= max_batch is
  /// part of the non-adaptive contract.
  bool adaptive = false;
  /// Overload growth ceiling, as a multiple of max_batch (>= 1; only read
  /// when `adaptive` is set).
  std::size_t growth_limit = 4;
};

/// Per-request latency breakdown (seconds).
struct RequestTiming {
  double queue_s = 0.0;  // submission -> micro-batch formation
  double exec_s = 0.0;   // model forward (shared by the whole micro-batch)
  double total_s = 0.0;  // submission -> response delivered
  std::size_t micro_batch = 0;  // size of the batch this request rode in
};

struct InferResponse {
  RequestId id = 0;
  Status status = Status::Ok;
  /// [out_channels, spatial] result for *owning* submissions; empty for
  /// zero-copy submissions (the result is in the caller's output buffer)
  /// and on any non-Ok status.
  std::vector<c32> output;
  RequestTiming timing;
  Priority priority = Priority::Normal;
};

/// Monotonic whole-server tallies (snapshot).
struct ServerStats {
  std::uint64_t submitted = 0;   // accepted into a queue
  std::uint64_t completed = 0;   // delivered with Status::Ok
  std::uint64_t rejected = 0;    // backlog-full or bad-input refusals
  std::uint64_t shut_down = 0;   // completed with Status::ShutDown
  std::uint64_t shed_normal = 0;  // Normal refusals by admission control
  std::uint64_t shed_high = 0;    // High refusals by admission control
  std::uint64_t exec_errors = 0;  // batches failed inside the model forward
  std::uint64_t batches = 0;     // micro-batches executed
  std::uint64_t batched_requests = 0;  // sum of micro-batch sizes
  std::uint64_t high_submitted = 0;    // accepted with Priority::High
  std::uint64_t starvation_promotions = 0;  // Normal popped ahead of High
  std::uint64_t grown_batches = 0;  // adaptive micro-batches larger than max_batch
  std::size_t max_micro_batch = 0;

  [[nodiscard]] double avg_micro_batch() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) / static_cast<double>(batches);
  }
};

}  // namespace turbofno::serve
