// Batched inference serving front-end — the first step toward the
// ROADMAP's heavy-traffic north star.
//
// Architecture:
//
//   submit() ──> per-model FIFO queue ──┐ size trigger (max_batch)
//                                       ├──> micro-batch ──> ThreadPool
//   timekeeper thread ──────────────────┘ deadline trigger     workers
//                                                                │
//   futures / callbacks <── scatter results <── Fno forward <────┘
//
// Requests for the same model are coalesced into dynamic micro-batches and
// executed through the model's batched forward (one fused FFT-CGEMM-iFFT
// sweep per spectral layer for the whole batch), reusing one pre-planned
// pipeline instance — FFT plans, packed weight planes, and workspaces —
// across every micro-batch.  Results are bitwise-identical to running each
// request alone, so batching is a pure throughput optimization.
//
// Thread safety: every public method may be called from any thread.
// Determinism: response *values* never depend on how requests were grouped
// into micro-batches; only timing metadata does.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/fno.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "serve/request.hpp"
#include "tensor/aligned_buffer.hpp"
#include "trace/counters.hpp"

namespace turbofno::serve {

class InferenceServer {
 public:
  struct Options {
    BatchingPolicy policy;
    /// Micro-batch executor threads.  One is enough on small hosts; more
    /// lets distinct models execute concurrently (one micro-batch per
    /// model is in flight at a time).
    std::size_t workers = 1;
  };

  InferenceServer() : InferenceServer(Options{}) {}
  explicit InferenceServer(Options opts);
  /// Drains in-flight and queued work (StopMode::Drain), then joins.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Registers a model; weights are materialized from the config's seed.
  /// Requests reference the returned id.  Registration is cheap to call at
  /// any time but models live for the server's lifetime.
  ModelId load_model(const core::Fno1dConfig& cfg);
  ModelId load_model(const core::Fno2dConfig& cfg);

  /// Input/output element counts one request of `m` must carry.
  [[nodiscard]] std::size_t input_elems(ModelId m) const;
  [[nodiscard]] std::size_t output_elems(ModelId m) const;

  /// Future-based submission.  The future is always eventually satisfied;
  /// check InferResponse::status.
  std::future<InferResponse> submit(ModelId model, std::vector<c32> input);

  /// Callback-based submission; `on_done` runs on an executor thread.
  void submit(ModelId model, std::vector<c32> input,
              std::function<void(InferResponse&&)> on_done);

  /// Flushes every non-empty queue as (possibly partial) micro-batches now,
  /// without waiting for size or deadline triggers.
  void flush();

  /// Blocks until every accepted request has been delivered.
  void drain();

  enum class StopMode {
    Drain,  // execute everything already accepted, then stop
    Abort,  // complete queued-but-unlaunched requests with Status::ShutDown
  };

  /// Stops intake and winds down per `mode`.  Idempotent; concurrent
  /// submissions race benignly (they complete with Status::ShutDown).
  void stop(StopMode mode = StopMode::Drain);

  [[nodiscard]] ServerStats stats() const;

  /// Cumulative per-stage latency/traffic counters, trace-style:
  ///   serve.queue-wait   sum of request queueing seconds
  ///   serve.gather       input coalescing (bytes_read = request bytes)
  ///   serve.execute      batched forwards (kernel_launches = micro-batches)
  ///   serve.scatter      result scatter + delivery (bytes_written)
  [[nodiscard]] trace::PipelineCounters latency_counters() const;

 private:
  struct Pending {
    RequestId id = 0;
    std::vector<c32> input;
    std::promise<InferResponse> promise;
    std::function<void(InferResponse&&)> callback;  // used when no promise
    bool has_promise = false;
    double submit_s = 0.0;  // server-clock submission stamp
  };

  struct Model {
    bool is_2d = false;
    std::size_t in_elems = 0;   // per request
    std::size_t out_elems = 0;  // per request
    std::unique_ptr<core::Fno1d> fno1;
    std::unique_ptr<core::Fno2d> fno2;
    // Guarded by the server mutex:
    std::deque<Pending> queue;
    bool busy = false;  // an executor currently owns this model
    bool flush_requested = false;  // flush() arrived while busy; launch on completion
    // Owned by the executor holding busy == true:
    AlignedBuffer<c32> batch_in;   // [max_batch, in_elems]
    AlignedBuffer<c32> batch_out;  // [max_batch, out_elems]
  };

  ModelId register_model(std::unique_ptr<Model> m);
  void submit_impl(ModelId model, std::vector<c32> input, Pending&& p);
  static void complete(Pending&& p, InferResponse&& r);
  // Pops up to max_batch requests and hands them to the pool.  Caller holds
  // mu_ and has checked the model is idle with a non-empty queue.
  void launch_locked(Model& m);
  void execute(Model& m, std::vector<Pending> batch);
  void timekeeper_loop();
  // True when `m`'s queue should be flushed by time rather than size.
  [[nodiscard]] bool deadline_due_locked(const Model& m, double now) const;
  // Launches idle non-empty queues and waits until nothing is in flight.
  void drain_locked(std::unique_lock<std::mutex>& lock);

  Options opts_;
  runtime::Timer clock_;  // server-lifetime monotonic clock

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Model>> models_;
  bool accepting_ = true;
  bool stopping_ = false;      // timekeeper shutdown flag
  bool stop_running_ = false;  // a stop() call owns the wind-down
  bool stop_done_ = false;     // stop() ran to completion (join included)
  std::uint64_t inflight_ = 0;  // accepted, not yet delivered
  RequestId next_id_ = 1;
  ServerStats stats_;

  std::condition_variable deadline_cv_;  // wakes the timekeeper
  std::condition_variable drained_cv_;   // wakes drain()/stop()

  mutable std::mutex trace_mu_;
  trace::PipelineCounters latency_{"serve"};

  runtime::ThreadPool pool_;
  std::thread timekeeper_;
};

}  // namespace turbofno::serve
