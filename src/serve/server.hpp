// Batched inference serving front-end — QoS-aware, zero-copy capable, and
// built on the Engine/Session API (TurboFNO API v2).
//
// Architecture:
//
//   submit() ──> per-model two-level QoS queue ──┐ size trigger (max_batch)
//                 (High / Normal + starvation    ├──> micro-batch ──> pool
//   timekeeper ── guard, deadline-aware pops) ───┘ deadline trigger  workers
//                                                                      │
//   futures / callbacks / caller buffers <── scatter <── Session <─────┘
//
// Requests for the same model are coalesced into dynamic micro-batches and
// executed through the model's elastic Engine session (one fused
// FFT-CGEMM-iFFT sweep per spectral layer for the whole batch), reusing
// FFT plans, packed weight planes, and workspaces across every
// micro-batch.  Results are bitwise-identical to running each request
// alone, so batching and QoS ordering are pure scheduling decisions.
//
// Submission comes in two flavors:
//   - zero-copy: the caller passes `std::span` views of its own input and
//     output buffers, which must stay valid (and the output must not be
//     read) until the response is delivered.  A single-request micro-batch
//     executes directly on the caller's memory — the server copies no
//     input or output bytes (the serve.gather/scatter counters prove it);
//     multi-request batches copy only into the batch staging area.
//   - owning: the caller moves in a std::vector and receives the result in
//     InferResponse::output.  Thin wrappers over the same path.
//
// QoS: each model has a two-level (High/Normal) queue.  Micro-batches pop
// High first, except that a Normal request older than
// BatchingPolicy::starvation_s is overdue and pops ahead of younger High
// work (starvation guard).  Both levels share the deadline trigger.
//
// Thread safety: every public method may be called from any thread.
// Determinism: response *values* never depend on how requests were grouped
// or ordered; only timing metadata does.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "runtime/thread_annotations.hpp"

#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/serialize.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "serve/request.hpp"
#include "tensor/aligned_buffer.hpp"
#include "trace/counters.hpp"

namespace turbofno::serve {

class InferenceServer {
 public:
  struct Options {
    BatchingPolicy policy;
    /// Micro-batch executor threads.  One is enough on small hosts; more
    /// lets distinct models execute concurrently (one micro-batch per
    /// model is in flight at a time).
    std::size_t workers = 1;
  };

  InferenceServer() : InferenceServer(Options{}) {}
  explicit InferenceServer(Options opts) : InferenceServer(std::move(opts), nullptr) {}
  /// Serve on an existing (shared) engine; `engine == nullptr` creates a
  /// private one.  Sharing an engine shares its runtime configuration and
  /// model registry with other users of it.
  InferenceServer(Options opts, std::shared_ptr<core::Engine> engine);
  /// Drains in-flight and queued work (StopMode::Drain), then joins.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Registers a model; weights are materialized from the config's seed.
  /// Requests reference the returned id.  Registration is cheap to call at
  /// any time but models live for the server's lifetime.
  ModelId load_model(const core::Fno1dConfig& cfg);
  ModelId load_model(const core::Fno2dConfig& cfg);
  /// Registers a model with weights from a serialized checkpoint; the
  /// bundle is validated against the architecture up front (throws).
  ModelId load_model(const core::Fno1dConfig& cfg, const core::WeightBundle& weights);
  ModelId load_model(const core::Fno2dConfig& cfg, const core::WeightBundle& weights);
  /// Registry partitioning: registers model `h` of another engine by
  /// adopting its immutable spec (Engine::share_spec/adopt_spec) — weights
  /// are shared, not re-seeded, so a shard worker serving a subset of a
  /// catalog is bitwise-identical to the catalog process serving it.
  ModelId adopt_model(const core::Engine& from, core::ModelHandle h);

  /// Number of registered models (what request frames may name).
  [[nodiscard]] std::size_t model_count() const;

  /// The engine this server executes on.
  [[nodiscard]] const std::shared_ptr<core::Engine>& engine() const noexcept { return engine_; }

  /// Input/output element counts one request of `m` must carry.
  [[nodiscard]] std::size_t input_elems(ModelId m) const;
  [[nodiscard]] std::size_t output_elems(ModelId m) const;

  /// Zero-copy submission: `input` and `output` are caller-owned views
  /// that must stay valid until the response is delivered; the result is
  /// written into `output` and InferResponse::output stays empty.
  std::future<InferResponse> submit(ModelId model, std::span<const c32> input,
                                    std::span<c32> output, SubmitOptions opts = {});
  void submit(ModelId model, std::span<const c32> input, std::span<c32> output,
              std::function<void(InferResponse&&)> on_done, SubmitOptions opts = {});

  /// Owning submission (thin wrappers over the zero-copy path): the input
  /// vector is moved in; the result arrives in InferResponse::output.
  std::future<InferResponse> submit(ModelId model, std::vector<c32> input,
                                    SubmitOptions opts = {});
  void submit(ModelId model, std::vector<c32> input,
              std::function<void(InferResponse&&)> on_done, SubmitOptions opts = {});

  /// Real-input (RFFT half-spectrum lane) zero-copy submission: the spans
  /// hold real samples and the request executes through Session::run_real.
  /// Same element counts and lifetime rules as the complex spans.  Requests
  /// of both lanes share one QoS queue; micro-batches are formed
  /// lane-homogeneous (a batch never mixes run and run_real requests).
  std::future<InferResponse> submit_real(ModelId model, std::span<const float> input,
                                         std::span<float> output, SubmitOptions opts = {});
  void submit_real(ModelId model, std::span<const float> input, std::span<float> output,
                   std::function<void(InferResponse&&)> on_done, SubmitOptions opts = {});

  /// Requests currently queued for `m` (both QoS levels, excluding the
  /// micro-batch in flight).  Admission-control visibility for front-ends.
  [[nodiscard]] std::size_t queue_depth(ModelId m) const;

  /// Per-request execution-time estimate (seconds) the admission control
  /// uses for `m`: an EWMA learned from completed micro-batches, 0 until
  /// the first batch finishes.
  [[nodiscard]] double exec_estimate(ModelId m) const;
  /// Overrides the learned estimate — a calibration/ops hook (and what
  /// makes admission-control tests deterministic).
  void set_exec_estimate(ModelId m, double seconds);

  /// Mean inter-arrival gap estimate (seconds) for `m`: an EWMA over the
  /// gaps between accepted submissions, 0 until two have arrived.  The
  /// adaptive batch policy sizes speculative micro-batches from it.
  [[nodiscard]] double arrival_estimate(ModelId m) const;
  /// Overrides the learned arrival gap — same role as set_exec_estimate.
  void set_arrival_estimate(ModelId m, double seconds);

  /// Flushes every non-empty queue as (possibly partial) micro-batches now,
  /// without waiting for size or deadline triggers.
  void flush();

  /// Blocks until every accepted request has been delivered.
  void drain();

  enum class StopMode {
    Drain,  // execute everything already accepted, then stop
    Abort,  // complete queued-but-unlaunched requests with Status::ShutDown
  };

  /// Stops intake and winds down per `mode`.  Idempotent; concurrent
  /// submissions race benignly (they complete with Status::ShutDown).
  void stop(StopMode mode = StopMode::Drain);

  [[nodiscard]] ServerStats stats() const;

  /// Cumulative per-stage latency/traffic counters, trace-style:
  ///   serve.queue-wait   sum of request queueing seconds
  ///   serve.gather       input staging; bytes_read counts only bytes the
  ///                      server actually copied (zero for single-request
  ///                      micro-batches, which run on the request memory)
  ///   serve.execute      batched forwards (kernel_launches = micro-batches)
  ///   serve.scatter      result delivery; bytes_written counts only bytes
  ///                      copied out of the staging area
  [[nodiscard]] trace::PipelineCounters latency_counters() const;

 private:
  struct Pending {
    RequestId id = 0;
    Priority priority = Priority::Normal;
    // Zero-copy views (always set for accepted requests; for owning
    // submissions they view `owned`/the response vector).
    std::span<const c32> in_view;
    std::span<c32> out_view;
    // Real-lane views (set instead of the complex ones when real == true;
    // the real lane is span-only, never owning).
    std::span<const float> fin_view;
    std::span<float> fout_view;
    bool real = false;            // executes through Session::run_real
    std::vector<c32> owned;       // backing storage for owning submissions
    bool owning = false;
    std::promise<InferResponse> promise;
    std::function<void(InferResponse&&)> callback;  // used when no promise
    bool has_promise = false;
    double submit_s = 0.0;   // server-clock submission stamp
    double deadline_s = 0.0;  // relative admission deadline (0 = none)
  };

  // Queue levels, pop-priority order.
  static constexpr std::size_t kHigh = 0;
  static constexpr std::size_t kNormal = 1;
  static constexpr std::size_t kLevels = 2;

  struct Model {
    core::ModelHandle handle = 0;
    std::size_t in_elems = 0;   // per request
    std::size_t out_elems = 0;  // per request
    std::optional<core::Session> session;
    // Guarded by the server's mu_ (a nested struct cannot name the owning
    // server's member in a guarded_by attribute, so the protocol is stated
    // here and enforced by the TFNO_REQUIRES(mu_) on every *_locked helper
    // that touches these fields):
    std::deque<Pending> queue[kLevels];
    bool busy = false;  // an executor currently owns this model
    bool flush_requested = false;  // flush() arrived while busy; launch on completion
    // Owned by the executor holding busy == true (single-owner protocol —
    // only the worker that observed busy flip false->true under mu_ may
    // touch the staging buffers, and it does so unlocked):
    AlignedBuffer<c32> batch_in;   // [max_batch, in_elems]
    AlignedBuffer<c32> batch_out;  // [max_batch, out_elems]
    AlignedBuffer<float> batch_in_f;   // real-lane staging, sized lazily
    AlignedBuffer<float> batch_out_f;
    // Guarded by the server's mu_: EWMA of per-request execution seconds,
    // learned from completed micro-batches (0 until the first completes).
    double exec_ewma_s = 0.0;
    // Guarded by the server's mu_: EWMA of the gap between accepted
    // submissions (0 until two arrive) and the previous arrival stamp
    // (-1 before the first).  The adaptive policy's load signal.
    double arrival_ewma_s = 0.0;
    double last_arrival_s = -1.0;

    [[nodiscard]] std::size_t queued() const noexcept {
      return queue[kHigh].size() + queue[kNormal].size();
    }
  };

  ModelId register_model(std::unique_ptr<Model> m);
  void submit_impl(ModelId model, Pending&& p);
  static void complete(Pending&& p, InferResponse&& r);
  /// Effective starvation bound (policy.starvation_s or its default).
  [[nodiscard]] double starvation_s() const noexcept;
  /// Oldest submission stamp across both levels; +inf when empty.
  [[nodiscard]] static double earliest_submit(const Model& m) noexcept;
  /// The queue the next pop (per QoS order: overdue Normal first, then
  /// High FIFO, then Normal FIFO) would come from.  Caller holds mu_ and
  /// has checked the model has queued work.  `count_promotion` tallies a
  /// starvation promotion when an overdue Normal outranks queued High work
  /// — pass it only when the front is actually popped.
  std::deque<Pending>& next_queue_locked(Model& m, double now, bool count_promotion)
      TFNO_REQUIRES(mu_);
  /// Pops the next request per QoS order.  Caller holds mu_ and has
  /// checked the model has queued work.
  Pending pop_next_locked(Model& m, double now) TFNO_REQUIRES(mu_);
  /// Admission control: can `p` still meet its deadline given the backlog
  /// ahead of it (per QoS class) and the learned per-request estimate?
  [[nodiscard]] bool deadline_feasible_locked(const Model& m, const Pending& p) const noexcept
      TFNO_REQUIRES(mu_);
  /// Largest micro-batch the policy currently allows for `m`: max_batch,
  /// or max_batch * growth_limit when the adaptive policy sees sustained
  /// overload (work arriving at least as fast as the learned estimate can
  /// drain it one batch at a time).
  [[nodiscard]] std::size_t batch_cap_locked(const Model& m) const noexcept TFNO_REQUIRES(mu_);
  /// Queue depth that triggers a size-based launch for `m`.  Non-adaptive:
  /// always max_batch.  Adaptive: the expected number of arrivals within
  /// max_delay_s (speculative sizing — waiting longer would not fill the
  /// batch further), clamped to [1, batch_cap_locked(m)].
  [[nodiscard]] std::size_t launch_target_locked(const Model& m) const noexcept
      TFNO_REQUIRES(mu_);
  // Pops up to batch_cap_locked(m) requests and hands them to the pool.
  // Caller holds mu_ and has checked the model is idle with a non-empty
  // queue.
  void launch_locked(Model& m) TFNO_REQUIRES(mu_);
  void execute(Model& m, std::vector<Pending> batch) TFNO_EXCLUDES(mu_);
  void timekeeper_loop() TFNO_EXCLUDES(mu_);
  // True when `m`'s queue should be flushed by time rather than size.
  [[nodiscard]] bool deadline_due_locked(const Model& m, double now) const TFNO_REQUIRES(mu_);
  // Launches idle non-empty queues and waits until nothing is in flight.
  void drain_locked(runtime::MutexLock& lock) TFNO_REQUIRES(mu_);

  Options opts_;
  std::shared_ptr<core::Engine> engine_;
  runtime::Timer clock_;  // server-lifetime monotonic clock

  mutable runtime::Mutex mu_;
  std::vector<std::unique_ptr<Model>> models_ TFNO_GUARDED_BY(mu_);
  bool accepting_ TFNO_GUARDED_BY(mu_) = true;
  bool stopping_ TFNO_GUARDED_BY(mu_) = false;      // timekeeper shutdown flag
  bool stop_running_ TFNO_GUARDED_BY(mu_) = false;  // a stop() call owns the wind-down
  bool stop_done_ TFNO_GUARDED_BY(mu_) = false;     // stop() ran to completion (join included)
  std::uint64_t inflight_ TFNO_GUARDED_BY(mu_) = 0;  // accepted, not yet delivered
  RequestId next_id_ TFNO_GUARDED_BY(mu_) = 1;
  ServerStats stats_ TFNO_GUARDED_BY(mu_);

  std::condition_variable deadline_cv_;  // wakes the timekeeper
  std::condition_variable drained_cv_;   // wakes drain()/stop()

  mutable runtime::Mutex trace_mu_;
  trace::PipelineCounters latency_ TFNO_GUARDED_BY(trace_mu_){"serve"};

  runtime::ThreadPool pool_;
  std::thread timekeeper_;
};

}  // namespace turbofno::serve
