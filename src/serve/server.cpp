#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

namespace turbofno::serve {

namespace {

// Deadline slack: triggering a hair early costs one slightly-smaller
// micro-batch; triggering late costs every queued request real latency.
constexpr double kDeadlineSlackS = 50e-6;

}  // namespace

std::string_view status_name(Status s) noexcept {
  switch (s) {
    case Status::Ok:
      return "ok";
    case Status::Rejected:
      return "rejected";
    case Status::ShutDown:
      return "shut-down";
    case Status::InvalidInput:
      return "invalid-input";
    case Status::Shed:
      return "shed";
  }
  return "?";
}

std::string_view priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::High:
      return "high";
    case Priority::Normal:
      return "normal";
  }
  return "?";
}

InferenceServer::InferenceServer(Options opts, std::shared_ptr<core::Engine> engine)
    : opts_(std::move(opts)),
      engine_(engine ? std::move(engine) : std::make_shared<core::Engine>()),
      pool_(std::max<std::size_t>(opts_.workers, 1)) {
  opts_.policy.max_batch = std::max<std::size_t>(opts_.policy.max_batch, 1);
  opts_.policy.queue_capacity = std::max<std::size_t>(opts_.policy.queue_capacity, 1);
  timekeeper_ = std::thread([this] { timekeeper_loop(); });
}

InferenceServer::~InferenceServer() { stop(StopMode::Drain); }

double InferenceServer::starvation_s() const noexcept {
  if (opts_.policy.starvation_s > 0.0) return opts_.policy.starvation_s;
  // Floor the derived default: with max_delay_s == 0 (pure flush/size-
  // triggered serving) a zero bound would mark every queued Normal request
  // overdue and invert the two-level ordering.
  return std::max(8.0 * opts_.policy.max_delay_s, 1e-3);
}

ModelId InferenceServer::register_model(std::unique_ptr<Model> m) {
  m->session = engine_->create_session(m->handle, opts_.policy.max_batch);
  m->in_elems = engine_->input_elems(m->handle);
  m->out_elems = engine_->output_elems(m->handle);
  m->batch_in.resize(opts_.policy.max_batch * m->in_elems);
  m->batch_out.resize(opts_.policy.max_batch * m->out_elems);
  const runtime::MutexLock lock(mu_);
  models_.push_back(std::move(m));
  return models_.size() - 1;
}

ModelId InferenceServer::load_model(const core::Fno1dConfig& cfg) {
  auto m = std::make_unique<Model>();
  m->handle = engine_->register_model(cfg);
  return register_model(std::move(m));
}

ModelId InferenceServer::load_model(const core::Fno2dConfig& cfg) {
  auto m = std::make_unique<Model>();
  m->handle = engine_->register_model(cfg);
  return register_model(std::move(m));
}

ModelId InferenceServer::load_model(const core::Fno1dConfig& cfg,
                                    const core::WeightBundle& weights) {
  auto m = std::make_unique<Model>();
  m->handle = engine_->load_model(cfg, weights);
  return register_model(std::move(m));
}

ModelId InferenceServer::load_model(const core::Fno2dConfig& cfg,
                                    const core::WeightBundle& weights) {
  auto m = std::make_unique<Model>();
  m->handle = engine_->load_model(cfg, weights);
  return register_model(std::move(m));
}

ModelId InferenceServer::adopt_model(const core::Engine& from, core::ModelHandle h) {
  auto m = std::make_unique<Model>();
  m->handle = engine_->adopt_spec(from.share_spec(h));
  return register_model(std::move(m));
}

std::size_t InferenceServer::model_count() const {
  const runtime::MutexLock lock(mu_);
  return models_.size();
}

std::size_t InferenceServer::input_elems(ModelId m) const {
  const runtime::MutexLock lock(mu_);
  return models_.at(m)->in_elems;
}

std::size_t InferenceServer::output_elems(ModelId m) const {
  const runtime::MutexLock lock(mu_);
  return models_.at(m)->out_elems;
}

std::size_t InferenceServer::queue_depth(ModelId m) const {
  const runtime::MutexLock lock(mu_);
  return models_.at(m)->queued();
}

double InferenceServer::exec_estimate(ModelId m) const {
  const runtime::MutexLock lock(mu_);
  return models_.at(m)->exec_ewma_s;
}

void InferenceServer::set_exec_estimate(ModelId m, double seconds) {
  const runtime::MutexLock lock(mu_);
  models_.at(m)->exec_ewma_s = seconds;
}

double InferenceServer::arrival_estimate(ModelId m) const {
  const runtime::MutexLock lock(mu_);
  return models_.at(m)->arrival_ewma_s;
}

void InferenceServer::set_arrival_estimate(ModelId m, double seconds) {
  const runtime::MutexLock lock(mu_);
  models_.at(m)->arrival_ewma_s = seconds;
}

void InferenceServer::complete(Pending&& p, InferResponse&& r) {
  r.id = p.id;
  r.priority = p.priority;
  if (p.has_promise) {
    p.promise.set_value(std::move(r));
  } else if (p.callback) {
    p.callback(std::move(r));
  }
}

std::future<InferResponse> InferenceServer::submit(ModelId model, std::span<const c32> input,
                                                   std::span<c32> output, SubmitOptions opts) {
  Pending p;
  p.priority = opts.priority;
  p.deadline_s = opts.deadline_s;
  p.in_view = input;
  p.out_view = output;
  p.has_promise = true;
  std::future<InferResponse> fut = p.promise.get_future();
  submit_impl(model, std::move(p));
  return fut;
}

void InferenceServer::submit(ModelId model, std::span<const c32> input, std::span<c32> output,
                             std::function<void(InferResponse&&)> on_done, SubmitOptions opts) {
  Pending p;
  p.priority = opts.priority;
  p.deadline_s = opts.deadline_s;
  p.in_view = input;
  p.out_view = output;
  p.callback = std::move(on_done);
  submit_impl(model, std::move(p));
}

std::future<InferResponse> InferenceServer::submit(ModelId model, std::vector<c32> input,
                                                   SubmitOptions opts) {
  Pending p;
  p.priority = opts.priority;
  p.deadline_s = opts.deadline_s;
  p.owned = std::move(input);
  p.owning = true;
  p.in_view = p.owned;
  p.has_promise = true;
  std::future<InferResponse> fut = p.promise.get_future();
  submit_impl(model, std::move(p));
  return fut;
}

void InferenceServer::submit(ModelId model, std::vector<c32> input,
                             std::function<void(InferResponse&&)> on_done, SubmitOptions opts) {
  Pending p;
  p.priority = opts.priority;
  p.deadline_s = opts.deadline_s;
  p.owned = std::move(input);
  p.owning = true;
  p.in_view = p.owned;
  p.callback = std::move(on_done);
  submit_impl(model, std::move(p));
}

std::future<InferResponse> InferenceServer::submit_real(ModelId model,
                                                        std::span<const float> input,
                                                        std::span<float> output,
                                                        SubmitOptions opts) {
  Pending p;
  p.priority = opts.priority;
  p.deadline_s = opts.deadline_s;
  p.fin_view = input;
  p.fout_view = output;
  p.real = true;
  p.has_promise = true;
  std::future<InferResponse> fut = p.promise.get_future();
  submit_impl(model, std::move(p));
  return fut;
}

void InferenceServer::submit_real(ModelId model, std::span<const float> input,
                                  std::span<float> output,
                                  std::function<void(InferResponse&&)> on_done,
                                  SubmitOptions opts) {
  Pending p;
  p.priority = opts.priority;
  p.deadline_s = opts.deadline_s;
  p.fin_view = input;
  p.fout_view = output;
  p.real = true;
  p.callback = std::move(on_done);
  submit_impl(model, std::move(p));
}

void InferenceServer::submit_impl(ModelId model, Pending&& p) {
  InferResponse refusal;
  bool refuse = false;
  {
    const runtime::MutexLock lock(mu_);
    Model& m = *models_.at(model);
    p.id = next_id_++;
    p.submit_s = clock_.seconds();
    const std::size_t in_n = p.real ? p.fin_view.size() : p.in_view.size();
    const std::size_t out_n = p.real ? p.fout_view.size() : p.out_view.size();
    const bool bad_shape = in_n != m.in_elems || (!p.owning && out_n != m.out_elems);
    if (!accepting_) {
      refusal.status = Status::ShutDown;
      ++stats_.shut_down;
      refuse = true;
    } else if (bad_shape) {
      refusal.status = Status::InvalidInput;
      ++stats_.rejected;
      refuse = true;
    } else if (m.queued() >= opts_.policy.queue_capacity) {
      refusal.status = Status::Rejected;
      ++stats_.rejected;
      refuse = true;
    } else if (p.deadline_s > 0.0 && !deadline_feasible_locked(m, p)) {
      refusal.status = Status::Shed;
      if (p.priority == Priority::High) {
        ++stats_.shed_high;
      } else {
        ++stats_.shed_normal;
      }
      refuse = true;
    } else {
      ++stats_.submitted;
      if (p.priority == Priority::High) ++stats_.high_submitted;
      ++inflight_;
      // Arrival-rate EWMA (adaptive sizing's load signal): the gap between
      // consecutive *accepted* submissions.  Learned unconditionally —
      // cheap, and it keeps arrival_estimate() meaningful even before the
      // adaptive policy is switched on.
      if (m.last_arrival_s >= 0.0) {
        const double gap = p.submit_s - m.last_arrival_s;
        m.arrival_ewma_s =
            m.arrival_ewma_s == 0.0 ? gap : 0.75 * m.arrival_ewma_s + 0.25 * gap;
      }
      m.last_arrival_s = p.submit_s;
      const std::size_t level = p.priority == Priority::High ? kHigh : kNormal;
      const bool was_empty = m.queued() == 0;
      m.queue[level].push_back(std::move(p));
      if (!m.busy && m.queued() >= launch_target_locked(m)) {
        launch_locked(m);
      } else if (was_empty || level == kHigh) {
        deadline_cv_.notify_one();  // a new earliest deadline may exist
      }
      return;
    }
  }
  if (refuse) complete(std::move(p), std::move(refusal));
}

double InferenceServer::earliest_submit(const Model& m) noexcept {
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& q : m.queue) {
    if (!q.empty()) earliest = std::min(earliest, q.front().submit_s);
  }
  return earliest;
}

bool InferenceServer::deadline_due_locked(const Model& m, double now) const {
  return m.queued() != 0 &&
         now >= earliest_submit(m) + opts_.policy.max_delay_s - kDeadlineSlackS;
}

bool InferenceServer::deadline_feasible_locked(const Model& m, const Pending& p) const noexcept {
  const double per = m.exec_ewma_s;
  if (per <= 0.0) return true;  // no estimate yet — admit and learn
  // Work that pops before this request, per QoS class: High requests wait
  // only on the High backlog (plus the batch in flight); Normal requests
  // wait on everything.  One-at-a-time execution is assumed — a deliberate
  // overestimate, since batching only shortens the wait.
  const std::size_t ahead =
      (p.priority == Priority::High ? m.queue[kHigh].size() : m.queued()) + (m.busy ? 1 : 0);
  return static_cast<double>(ahead + 1) * per <= p.deadline_s;
}

std::deque<InferenceServer::Pending>& InferenceServer::next_queue_locked(Model& m, double now,
                                                                         bool count_promotion) {
  auto& high = m.queue[kHigh];
  auto& normal = m.queue[kNormal];
  // Starvation guard first: an overdue Normal request outranks younger
  // High work, bounding how long strict priority can delay it.
  if (!normal.empty() && now >= normal.front().submit_s + starvation_s()) {
    if (count_promotion && !high.empty()) ++stats_.starvation_promotions;
    return normal;
  }
  return high.empty() ? normal : high;
}

InferenceServer::Pending InferenceServer::pop_next_locked(Model& m, double now) {
  auto& q = next_queue_locked(m, now, /*count_promotion=*/true);
  Pending p = std::move(q.front());
  q.pop_front();
  return p;
}

std::size_t InferenceServer::batch_cap_locked(const Model& m) const noexcept {
  if (!opts_.policy.adaptive) return opts_.policy.max_batch;
  // Sustained overload: requests arrive at least as fast as the learned
  // per-request estimate can drain them.  Both EWMAs must have learned
  // something — growth is never speculative about *cost*.
  if (m.exec_ewma_s > 0.0 && m.arrival_ewma_s > 0.0 && m.arrival_ewma_s <= m.exec_ewma_s) {
    return opts_.policy.max_batch * std::max<std::size_t>(opts_.policy.growth_limit, 1);
  }
  return opts_.policy.max_batch;
}

std::size_t InferenceServer::launch_target_locked(const Model& m) const noexcept {
  if (!opts_.policy.adaptive || m.arrival_ewma_s <= 0.0) return opts_.policy.max_batch;
  // Speculative sizing: the batch a full max_delay_s wait is *expected* to
  // accumulate.  Once that many are queued, waiting longer cannot fill the
  // batch further — launch now.  Sparse traffic (gap >= max_delay_s) thus
  // launches singletons immediately instead of eating the delay.
  const double expected = opts_.policy.max_delay_s / m.arrival_ewma_s;
  const std::size_t cap = batch_cap_locked(m);
  if (expected <= 1.0) return 1;
  if (expected >= static_cast<double>(cap)) return cap;
  return static_cast<std::size_t>(std::ceil(expected));
}

void InferenceServer::launch_locked(Model& m) {
  m.flush_requested = false;  // launching consumes any pending flush intent
  const double now = clock_.seconds();
  const std::size_t n = std::min(m.queued(), batch_cap_locked(m));
  auto batch = std::make_shared<std::vector<Pending>>();
  batch->reserve(n);
  batch->push_back(pop_next_locked(m, now));
  // Micro-batches are lane-homogeneous: stop at the first queued request
  // whose lane (run vs run_real) differs from the batch leader's.  The
  // remainder launches in the relaunch chain, exactly like an over-full
  // queue would.
  for (std::size_t i = 1; i < n; ++i) {
    if (next_queue_locked(m, now, /*count_promotion=*/false).front().real !=
        batch->front().real) {
      break;
    }
    batch->push_back(pop_next_locked(m, now));
  }
  m.busy = true;
  // shared_ptr because std::function requires copyable callables; the
  // Model lives in a stable unique_ptr slot for the server's lifetime.
  Model* mp = &m;
  pool_.submit([this, mp, batch] { execute(*mp, std::move(*batch)); });
}

void InferenceServer::execute(Model& m, std::vector<Pending> batch) {
  const std::size_t B = batch.size();
  const bool real = batch.front().real;  // batches are lane-homogeneous
  const double formed_s = clock_.seconds();
  const std::size_t elem_bytes = real ? sizeof(float) : sizeof(c32);

  double gather_s = 0.0;
  double exec_s = 0.0;
  std::size_t gather_bytes = 0;
  std::size_t scatter_bytes = 0;
  bool exec_ok = true;
  std::vector<InferResponse> responses(B);

  // Runs one lane of the session, mapping a model-side failure (e.g. a
  // shape the requested lane cannot support) to typed InvalidInput
  // responses instead of tearing down the serving process.
  const auto guarded_run = [&](auto&& fn) {
    runtime::Timer exec_t;
    try {
      fn();
    } catch (const std::exception&) {
      exec_ok = false;
    }
    exec_s = exec_t.seconds();
  };

  if (B == 1) {
    // Single-request fast path: the session runs directly on the request's
    // memory (the caller's buffers for zero-copy submissions, the moved-in
    // vector and the response vector for owning ones).  Nothing is staged,
    // so the gather/scatter counters see zero bytes.
    Pending& p = batch.front();
    InferResponse& r = responses.front();
    if (real) {
      guarded_run([&] { m.session->run_real(p.fin_view, p.fout_view, 1); });
    } else {
      std::span<c32> out = p.out_view;
      if (p.owning) {
        r.output.resize(m.out_elems);
        out = r.output;
      }
      guarded_run([&] { m.session->run(p.in_view, out, 1); });
    }
  } else if (real) {
    // The float staging area is sized lazily on the first multi-request
    // real micro-batch (many deployments never submit this lane), and
    // grows when the adaptive policy launches past max_batch.  Safe
    // unlocked: the executor owns the staging buffers while busy == true.
    const std::size_t rows = std::max(B, opts_.policy.max_batch);
    if (m.batch_in_f.size() < rows * m.in_elems) {
      m.batch_in_f.resize(rows * m.in_elems);
      m.batch_out_f.resize(rows * m.out_elems);
    }
    runtime::Timer gather_t;
    for (std::size_t i = 0; i < B; ++i) {
      std::memcpy(m.batch_in_f.data() + i * m.in_elems, batch[i].fin_view.data(),
                  m.in_elems * sizeof(float));
    }
    gather_s = gather_t.seconds();
    gather_bytes = B * m.in_elems * sizeof(float);

    const std::span<const float> in{m.batch_in_f.data(), B * m.in_elems};
    const std::span<float> out{m.batch_out_f.data(), B * m.out_elems};
    guarded_run([&] { m.session->run_real(in, out, B); });
  } else {
    // Complex staging is pre-sized to max_batch at registration; adaptive
    // grown batches extend it here (executor-owned, see above).
    if (m.batch_in.size() < B * m.in_elems) {
      m.batch_in.resize(B * m.in_elems);
      m.batch_out.resize(B * m.out_elems);
    }
    runtime::Timer gather_t;
    for (std::size_t i = 0; i < B; ++i) {
      std::memcpy(m.batch_in.data() + i * m.in_elems, batch[i].in_view.data(),
                  m.in_elems * sizeof(c32));
    }
    gather_s = gather_t.seconds();
    gather_bytes = B * m.in_elems * sizeof(c32);

    const std::span<const c32> in{m.batch_in.data(), B * m.in_elems};
    const std::span<c32> out{m.batch_out.data(), B * m.out_elems};
    guarded_run([&] { m.session->run(in, out, B); });
  }

  runtime::Timer scatter_t;
  double queue_wait_sum = 0.0;
  for (std::size_t i = 0; i < B; ++i) {
    InferResponse& r = responses[i];
    r.status = exec_ok ? Status::Ok : Status::InvalidInput;
    if (!exec_ok) r.output.clear();
    if (exec_ok && B > 1) {
      if (real) {
        std::memcpy(batch[i].fout_view.data(), m.batch_out_f.data() + i * m.out_elems,
                    m.out_elems * sizeof(float));
      } else {
        const c32* row = m.batch_out.data() + i * m.out_elems;
        if (batch[i].owning) {
          r.output.assign(row, row + m.out_elems);
        } else {
          std::memcpy(batch[i].out_view.data(), row, m.out_elems * sizeof(c32));
        }
      }
      scatter_bytes += m.out_elems * elem_bytes;
    }
    r.timing.queue_s = formed_s - batch[i].submit_s;
    r.timing.exec_s = exec_s;
    r.timing.micro_batch = B;
    r.timing.total_s = clock_.seconds() - batch[i].submit_s;
    queue_wait_sum += r.timing.queue_s;
    complete(std::move(batch[i]), std::move(r));
  }
  const double scatter_s = scatter_t.seconds();

  {
    const runtime::MutexLock lock(trace_mu_);
    latency_.stage("queue-wait").seconds += queue_wait_sum;
    auto& g = latency_.stage("gather");
    g.seconds += gather_s;
    g.bytes_read += gather_bytes;
    auto& e = latency_.stage("execute");
    e.seconds += exec_s;
    e.kernel_launches += 1;
    auto& s = latency_.stage("scatter");
    s.seconds += scatter_s;
    s.bytes_written += scatter_bytes;
  }

  {
    const runtime::MutexLock lock(mu_);
    m.busy = false;
    inflight_ -= B;
    if (exec_ok) {
      stats_.completed += B;
      // Admission control learns from every successful batch: an EWMA of
      // per-request execution seconds (stable enough to judge deadline
      // feasibility, reactive enough to follow load-dependent drift).
      const double per_req = exec_s / static_cast<double>(B);
      m.exec_ewma_s = m.exec_ewma_s == 0.0 ? per_req : 0.75 * m.exec_ewma_s + 0.25 * per_req;
    } else {
      ++stats_.exec_errors;
    }
    stats_.batches += 1;
    stats_.batched_requests += B;
    stats_.max_micro_batch = std::max(stats_.max_micro_batch, B);
    if (B > opts_.policy.max_batch) ++stats_.grown_batches;
    if (m.queued() != 0 &&
        (m.queued() >= launch_target_locked(m) || !accepting_ || m.flush_requested ||
         deadline_due_locked(m, clock_.seconds()))) {
      launch_locked(m);
    }
  }
  drained_cv_.notify_all();
  deadline_cv_.notify_one();
}

void InferenceServer::timekeeper_loop() {
  runtime::MutexLock lock(mu_);
  while (!stopping_) {
    double earliest = std::numeric_limits<double>::infinity();
    for (const auto& m : models_) {
      if (!m->busy && m->queued() != 0) {
        earliest = std::min(earliest, earliest_submit(*m) + opts_.policy.max_delay_s);
      }
    }
    if (earliest == std::numeric_limits<double>::infinity()) {
      deadline_cv_.wait(lock.native());
      continue;
    }
    const double now = clock_.seconds();
    if (now >= earliest - kDeadlineSlackS) {
      for (auto& m : models_) {
        if (!m->busy && deadline_due_locked(*m, now)) launch_locked(*m);
      }
      continue;  // recompute the next earliest deadline
    }
    deadline_cv_.wait_for(lock.native(), std::chrono::duration<double>(earliest - now));
  }
}

void InferenceServer::flush() {
  const runtime::MutexLock lock(mu_);
  for (auto& m : models_) {
    if (m->queued() == 0) continue;
    if (!m->busy) {
      launch_locked(*m);
    } else {
      // Remember the intent: the executor finishing this model launches the
      // queued remainder instead of letting it wait out the deadline.
      m->flush_requested = true;
    }
  }
}

void InferenceServer::drain_locked(runtime::MutexLock& lock) {
  while (inflight_ > 0) {
    for (auto& m : models_) {
      if (!m->busy && m->queued() != 0) launch_locked(*m);
    }
    drained_cv_.wait_for(lock.native(), std::chrono::milliseconds(1));
  }
}

void InferenceServer::drain() {
  runtime::MutexLock lock(mu_);
  drain_locked(lock);
}

void InferenceServer::stop(StopMode mode) {
  std::vector<Pending> aborted;
  {
    runtime::MutexLock lock(mu_);
    if (stop_done_) return;
    if (stop_running_) {
      // Another thread owns the wind-down (stop() and the destructor may
      // race); wait for it to finish rather than double-joining.  Explicit
      // loop instead of the predicate overload: the analysis cannot see
      // that a predicate lambda runs with the lock held.
      while (!stop_done_) drained_cv_.wait(lock.native());
      return;
    }
    stop_running_ = true;
    accepting_ = false;
    if (mode == StopMode::Abort) {
      for (auto& m : models_) {
        for (auto& q : m->queue) {
          while (!q.empty()) {
            aborted.push_back(std::move(q.front()));
            q.pop_front();
            --inflight_;
            ++stats_.shut_down;
          }
        }
      }
    }
    drain_locked(lock);
    stopping_ = true;
  }
  deadline_cv_.notify_all();
  if (timekeeper_.joinable()) timekeeper_.join();
  for (auto& p : aborted) {
    InferResponse r;
    r.status = Status::ShutDown;
    complete(std::move(p), std::move(r));
  }
  {
    const runtime::MutexLock lock(mu_);
    stop_done_ = true;
  }
  drained_cv_.notify_all();
}

ServerStats InferenceServer::stats() const {
  const runtime::MutexLock lock(mu_);
  return stats_;
}

trace::PipelineCounters InferenceServer::latency_counters() const {
  const runtime::MutexLock lock(trace_mu_);
  return latency_;
}

}  // namespace turbofno::serve
