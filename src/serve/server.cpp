#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>

namespace turbofno::serve {

namespace {

// Deadline slack: triggering a hair early costs one slightly-smaller
// micro-batch; triggering late costs every queued request real latency.
constexpr double kDeadlineSlackS = 50e-6;

}  // namespace

std::string_view status_name(Status s) noexcept {
  switch (s) {
    case Status::Ok:
      return "ok";
    case Status::Rejected:
      return "rejected";
    case Status::ShutDown:
      return "shut-down";
    case Status::InvalidInput:
      return "invalid-input";
  }
  return "?";
}

InferenceServer::InferenceServer(Options opts)
    : opts_(opts), pool_(std::max<std::size_t>(opts.workers, 1)) {
  opts_.policy.max_batch = std::max<std::size_t>(opts_.policy.max_batch, 1);
  opts_.policy.queue_capacity = std::max<std::size_t>(opts_.policy.queue_capacity, 1);
  timekeeper_ = std::thread([this] { timekeeper_loop(); });
}

InferenceServer::~InferenceServer() { stop(StopMode::Drain); }

ModelId InferenceServer::register_model(std::unique_ptr<Model> m) {
  const std::lock_guard<std::mutex> lock(mu_);
  models_.push_back(std::move(m));
  return models_.size() - 1;
}

ModelId InferenceServer::load_model(const core::Fno1dConfig& cfg) {
  auto m = std::make_unique<Model>();
  m->is_2d = false;
  m->in_elems = cfg.in_channels * cfg.n;
  m->out_elems = cfg.out_channels * cfg.n;
  m->fno1 = std::make_unique<core::Fno1d>(cfg, opts_.policy.max_batch);
  m->batch_in.resize(opts_.policy.max_batch * m->in_elems);
  m->batch_out.resize(opts_.policy.max_batch * m->out_elems);
  return register_model(std::move(m));
}

ModelId InferenceServer::load_model(const core::Fno2dConfig& cfg) {
  auto m = std::make_unique<Model>();
  m->is_2d = true;
  m->in_elems = cfg.in_channels * cfg.nx * cfg.ny;
  m->out_elems = cfg.out_channels * cfg.nx * cfg.ny;
  m->fno2 = std::make_unique<core::Fno2d>(cfg, opts_.policy.max_batch);
  m->batch_in.resize(opts_.policy.max_batch * m->in_elems);
  m->batch_out.resize(opts_.policy.max_batch * m->out_elems);
  return register_model(std::move(m));
}

std::size_t InferenceServer::input_elems(ModelId m) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return models_.at(m)->in_elems;
}

std::size_t InferenceServer::output_elems(ModelId m) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return models_.at(m)->out_elems;
}

void InferenceServer::complete(Pending&& p, InferResponse&& r) {
  r.id = p.id;
  if (p.has_promise) {
    p.promise.set_value(std::move(r));
  } else if (p.callback) {
    p.callback(std::move(r));
  }
}

std::future<InferResponse> InferenceServer::submit(ModelId model, std::vector<c32> input) {
  Pending p;
  p.has_promise = true;
  std::future<InferResponse> fut = p.promise.get_future();
  submit_impl(model, std::move(input), std::move(p));
  return fut;
}

void InferenceServer::submit(ModelId model, std::vector<c32> input,
                             std::function<void(InferResponse&&)> on_done) {
  Pending p;
  p.callback = std::move(on_done);
  submit_impl(model, std::move(input), std::move(p));
}

void InferenceServer::submit_impl(ModelId model, std::vector<c32> input, Pending&& p) {
  p.input = std::move(input);
  InferResponse refusal;
  bool refuse = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    Model& m = *models_.at(model);
    p.id = next_id_++;
    p.submit_s = clock_.seconds();
    if (!accepting_) {
      refusal.status = Status::ShutDown;
      ++stats_.shut_down;
      refuse = true;
    } else if (p.input.size() != m.in_elems) {
      refusal.status = Status::InvalidInput;
      ++stats_.rejected;
      refuse = true;
    } else if (m.queue.size() >= opts_.policy.queue_capacity) {
      refusal.status = Status::Rejected;
      ++stats_.rejected;
      refuse = true;
    } else {
      ++stats_.submitted;
      ++inflight_;
      m.queue.push_back(std::move(p));
      if (!m.busy && m.queue.size() >= opts_.policy.max_batch) {
        launch_locked(m);
      } else if (m.queue.size() == 1) {
        deadline_cv_.notify_one();  // a new earliest deadline exists
      }
      return;
    }
  }
  if (refuse) complete(std::move(p), std::move(refusal));
}

bool InferenceServer::deadline_due_locked(const Model& m, double now) const {
  return !m.queue.empty() &&
         now >= m.queue.front().submit_s + opts_.policy.max_delay_s - kDeadlineSlackS;
}

void InferenceServer::launch_locked(Model& m) {
  m.flush_requested = false;  // launching consumes any pending flush intent
  const std::size_t n = std::min(m.queue.size(), opts_.policy.max_batch);
  auto batch = std::make_shared<std::vector<Pending>>();
  batch->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch->push_back(std::move(m.queue.front()));
    m.queue.pop_front();
  }
  m.busy = true;
  // shared_ptr because std::function requires copyable callables; the
  // Model lives in a stable unique_ptr slot for the server's lifetime.
  Model* mp = &m;
  pool_.submit([this, mp, batch] { execute(*mp, std::move(*batch)); });
}

void InferenceServer::execute(Model& m, std::vector<Pending> batch) {
  const std::size_t B = batch.size();
  const double formed_s = clock_.seconds();

  runtime::Timer gather_t;
  for (std::size_t i = 0; i < B; ++i) {
    std::memcpy(m.batch_in.data() + i * m.in_elems, batch[i].input.data(),
                m.in_elems * sizeof(c32));
  }
  const double gather_s = gather_t.seconds();

  runtime::Timer exec_t;
  const std::span<const c32> in{m.batch_in.data(), B * m.in_elems};
  const std::span<c32> out{m.batch_out.data(), B * m.out_elems};
  if (m.is_2d) {
    m.fno2->forward(in, out, B);
  } else {
    m.fno1->forward(in, out, B);
  }
  const double exec_s = exec_t.seconds();

  runtime::Timer scatter_t;
  double queue_wait_sum = 0.0;
  for (std::size_t i = 0; i < B; ++i) {
    InferResponse r;
    r.status = Status::Ok;
    r.output.assign(m.batch_out.data() + i * m.out_elems,
                    m.batch_out.data() + (i + 1) * m.out_elems);
    r.timing.queue_s = formed_s - batch[i].submit_s;
    r.timing.exec_s = exec_s;
    r.timing.micro_batch = B;
    r.timing.total_s = clock_.seconds() - batch[i].submit_s;
    queue_wait_sum += r.timing.queue_s;
    complete(std::move(batch[i]), std::move(r));
  }
  const double scatter_s = scatter_t.seconds();

  {
    const std::lock_guard<std::mutex> lock(trace_mu_);
    latency_.stage("queue-wait").seconds += queue_wait_sum;
    auto& g = latency_.stage("gather");
    g.seconds += gather_s;
    g.bytes_read += B * m.in_elems * sizeof(c32);
    auto& e = latency_.stage("execute");
    e.seconds += exec_s;
    e.kernel_launches += 1;
    auto& s = latency_.stage("scatter");
    s.seconds += scatter_s;
    s.bytes_written += B * m.out_elems * sizeof(c32);
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    m.busy = false;
    inflight_ -= B;
    stats_.completed += B;
    stats_.batches += 1;
    stats_.batched_requests += B;
    stats_.max_micro_batch = std::max(stats_.max_micro_batch, B);
    if (!m.queue.empty() &&
        (m.queue.size() >= opts_.policy.max_batch || !accepting_ || m.flush_requested ||
         deadline_due_locked(m, clock_.seconds()))) {
      launch_locked(m);
    }
  }
  drained_cv_.notify_all();
  deadline_cv_.notify_one();
}

void InferenceServer::timekeeper_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    double earliest = std::numeric_limits<double>::infinity();
    for (const auto& m : models_) {
      if (!m->busy && !m->queue.empty()) {
        earliest = std::min(earliest, m->queue.front().submit_s + opts_.policy.max_delay_s);
      }
    }
    if (earliest == std::numeric_limits<double>::infinity()) {
      deadline_cv_.wait(lock);
      continue;
    }
    const double now = clock_.seconds();
    if (now >= earliest - kDeadlineSlackS) {
      for (auto& m : models_) {
        if (!m->busy && deadline_due_locked(*m, now)) launch_locked(*m);
      }
      continue;  // recompute the next earliest deadline
    }
    deadline_cv_.wait_for(lock, std::chrono::duration<double>(earliest - now));
  }
}

void InferenceServer::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& m : models_) {
    if (m->queue.empty()) continue;
    if (!m->busy) {
      launch_locked(*m);
    } else {
      // Remember the intent: the executor finishing this model launches the
      // queued remainder instead of letting it wait out the deadline.
      m->flush_requested = true;
    }
  }
}

void InferenceServer::drain_locked(std::unique_lock<std::mutex>& lock) {
  while (inflight_ > 0) {
    for (auto& m : models_) {
      if (!m->busy && !m->queue.empty()) launch_locked(*m);
    }
    drained_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void InferenceServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_locked(lock);
}

void InferenceServer::stop(StopMode mode) {
  std::vector<Pending> aborted;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_done_) return;
    if (stop_running_) {
      // Another thread owns the wind-down (stop() and the destructor may
      // race); wait for it to finish rather than double-joining.
      drained_cv_.wait(lock, [this] { return stop_done_; });
      return;
    }
    stop_running_ = true;
    accepting_ = false;
    if (mode == StopMode::Abort) {
      for (auto& m : models_) {
        while (!m->queue.empty()) {
          aborted.push_back(std::move(m->queue.front()));
          m->queue.pop_front();
          --inflight_;
          ++stats_.shut_down;
        }
      }
    }
    drain_locked(lock);
    stopping_ = true;
  }
  deadline_cv_.notify_all();
  if (timekeeper_.joinable()) timekeeper_.join();
  for (auto& p : aborted) {
    InferResponse r;
    r.status = Status::ShutDown;
    complete(std::move(p), std::move(r));
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_done_ = true;
  }
  drained_cv_.notify_all();
}

ServerStats InferenceServer::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

trace::PipelineCounters InferenceServer::latency_counters() const {
  const std::lock_guard<std::mutex> lock(trace_mu_);
  return latency_;
}

}  // namespace turbofno::serve
