// Figure 13: the fully fused FFT-CGEMM-iFFT kernel (method D) against
// PyTorch and every partial-fusion stage.
#include "sweep1d.hpp"

int main(int argc, char** argv) {
  using namespace turbofno::bench;
  using turbofno::fused::Variant;
  const Options opt = Options::parse(argc, argv);
  std::printf("== Fig 13: 1D fully fused FFT-CGEMM-iFFT (D) ==\n\n");
  run_1d_figure(13, "Fused_FFT_GEMM_iFFT", opt,
                {Variant::PyTorch, Variant::FftOpt, Variant::FusedFftGemm,
                 Variant::FusedGemmIfft, Variant::FullyFused});
  return 0;
}
