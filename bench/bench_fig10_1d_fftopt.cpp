// Figure 10: 1D FFT optimization (pruning + truncation + zero padding)
// against the PyTorch-like baseline.  Method A of Table 2.
#include "sweep1d.hpp"

int main(int argc, char** argv) {
  using namespace turbofno::bench;
  using turbofno::fused::Variant;
  const Options opt = Options::parse(argc, argv);
  std::printf("== Fig 10: 1D FFT pruning/truncation/zero-padding (A) ==\n\n");
  run_1d_figure(10, "FFT+GEMM+iFFT (built-in filtering, unfused)", opt,
                {Variant::PyTorch, Variant::FftOpt});
  return 0;
}
