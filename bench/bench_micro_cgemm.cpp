// Micro-benchmarks of the blocked CGEMM (the Section 3 claim): GFLOP/s on
// square and tall-and-skinny (FNO-shaped) problems vs the naive kernel.
#include <benchmark/benchmark.h>

#include "core/workload.hpp"
#include "gemm/cgemm.hpp"
#include "gemm/reference.hpp"
#include "tensor/aligned_buffer.hpp"
#include "trace/counters.hpp"

namespace {

using namespace turbofno;

void run_case(benchmark::State& state, std::size_t M, std::size_t N, std::size_t K,
              bool blocked) {
  AlignedBuffer<c32> A(M * K);
  AlignedBuffer<c32> B(K * N);
  AlignedBuffer<c32> C(M * N);
  core::fill_random(A.span(), 1u);
  core::fill_random(B.span(), 2u);
  for (auto _ : state) {
    if (blocked) {
      gemm::cgemm(M, N, K, c32{1.0f, 0.0f}, A.data(), K, B.data(), N, c32{0.0f, 0.0f}, C.data(),
                  N);
    } else {
      gemm::cgemm_reference(M, N, K, c32{1.0f, 0.0f}, A.data(), K, B.data(), N, c32{0.0f, 0.0f},
                            C.data(), N);
    }
    benchmark::DoNotOptimize(C.data());
  }
  const double flops = static_cast<double>(trace::cgemm_flops(M, N, K));
  state.counters["GFLOP/s"] = benchmark::Counter(flops * state.iterations() * 1e-9,
                                                 benchmark::Counter::kIsRate);
}

void BM_CgemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_case(state, n, n, n, true);
}
BENCHMARK(BM_CgemmSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->UseRealTime();

void BM_CgemmTallSkinny(benchmark::State& state) {
  // The FNO shape: M = batch x modes huge, N = OutputDim, K = HiddenDim.
  const auto m = static_cast<std::size_t>(state.range(0));
  run_case(state, m, 64, 64, true);
}
BENCHMARK(BM_CgemmTallSkinny)->Arg(4096)->Arg(16384)->Arg(65536)->UseRealTime();

void BM_CgemmNaiveAnchor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_case(state, n, n, n, false);
}
BENCHMARK(BM_CgemmNaiveAnchor)->Arg(64)->Arg(128);

void BM_CgemmBatchedFnoLayer(benchmark::State& state) {
  // The exact GEMM the spectral layer runs: per-batch O x modes x K.
  const std::size_t batch = 64;
  const std::size_t K = static_cast<std::size_t>(state.range(0));
  const std::size_t O = K;
  const std::size_t modes = 64;
  AlignedBuffer<c32> W(O * K);
  AlignedBuffer<c32> U(batch * K * modes);
  AlignedBuffer<c32> V(batch * O * modes);
  core::fill_random(W.span(), 3u);
  core::fill_random(U.span(), 4u);
  for (auto _ : state) {
    for (std::size_t b = 0; b < batch; ++b) {
      gemm::cgemm(O, modes, K, c32{1.0f, 0.0f}, W.data(), K, U.data() + b * K * modes, modes,
                  c32{0.0f, 0.0f}, V.data() + b * O * modes, modes);
    }
    benchmark::DoNotOptimize(V.data());
  }
  const double flops = static_cast<double>(batch) *
                       static_cast<double>(trace::cgemm_flops(O, modes, K));
  state.counters["GFLOP/s"] = benchmark::Counter(flops * state.iterations() * 1e-9,
                                                 benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CgemmBatchedFnoLayer)->Arg(32)->Arg(64)->Arg(128)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
