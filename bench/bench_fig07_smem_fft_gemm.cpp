// Figure 7: shared-memory bank utilization of the FFT -> CGEMM forwarding
// layouts, replayed on the bank-conflict simulator.
#include <cstdio>

#include "bench_common.hpp"
#include "gpusim/layouts.hpp"
#include "trace/table.hpp"

namespace {

void report(const char* label, const turbofno::gpusim::AccessPattern& p, const char* paper,
            turbofno::trace::TextTable& t) {
  const auto audit = turbofno::gpusim::replay(p);
  t.add_row({label, turbofno::trace::TextTable::fmt(100.0 * audit.utilization(), 2) + "%",
             turbofno::trace::TextTable::fmt(100.0 * p.bank_coverage(), 2) + "%",
             turbofno::trace::TextTable::fmt(audit.mean_cycles(), 2), paper});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbofno;
  using namespace turbofno::gpusim;
  (void)bench::Options::parse(argc, argv);

  std::printf("== Fig 7: FFT->CGEMM shared-memory layouts (bank simulator) ==\n\n");
  trace::TextTable t({"layout", "utilization", "bank coverage", "cycles/instr", "paper says"});
  report("(a) VkFFT strided -> GEMM column load", fig7a_gemm_load_vkfft_layout(), "25%", t);
  report("(a) TurboFNO consecutive -> GEMM load", fig7a_gemm_load_turbofno_layout(), "100%", t);
  report("(b) 16-elem writeback, no swizzle", fig7b_fft16_writeback(false), "6.25% (2/32)", t);
  report("(b) 16-elem writeback, addr += tid", fig7b_fft16_writeback(true), "100%", t);
  report("(c) 8-elem writeback, no swizzle", fig7c_fft8_writeback(false), "(conflicting)", t);
  report("(c) 8-elem writeback, addr += tid/2", fig7c_fft8_writeback(true), "100%", t);
  std::printf("%s", t.str().c_str());
  std::printf("\n32 banks x 4 bytes; each c32 element spans two banks; utilization =\n"
              "useful bank-words / (cycles x 32); coverage = banks touched / 32.\n");
  return 0;
}
