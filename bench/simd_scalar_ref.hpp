// Scalar-backend reference kernels for bench_micro_simd.
//
// These are hand copies of the seed's scalar kernels (the exact code the
// TURBOFNO_SIMD=scalar build runs), built in their own translation unit with
// AVX/FMA codegen disabled (see CMakeLists).  Everything else in the bench
// binary is compiled with the active backend's flags, so comparing against
// functions from this TU measures "scalar build vs SIMD build" inside one
// binary instead of "auto-vectorized-with-AVX2 vs explicit-AVX2".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/complex.hpp"

namespace turbofno::bench::scalar_ref {

// FusedTiles (paper Table 1): Mtb = Ntb = 32, Ktb = 8, Mt = Nt = 4.
inline constexpr std::size_t kMtb = 32;
inline constexpr std::size_t kNtb = 32;
inline constexpr std::size_t kKtb = 8;

/// One full accumulator-tile pass of the interleaved scalar micro-kernel
/// over packed panels (the scalar tile_task inner block).
void micro_cgemm_pass(c32* acc_tile, const c32* Apack, const c32* Bpack, std::size_t kc);

/// Whole blocked CGEMM at the FusedTiles config, single-threaded, scalar
/// packing + micro-kernel + epilogue.
void cgemm_fused_tiles(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A,
                       std::size_t lda, const c32* B, std::size_t ldb, c32 beta, c32* C,
                       std::size_t ldc);

/// The seed's pruned-DIF block butterfly.
std::uint64_t dif_block_butterfly(c32* x, std::size_t half, std::size_t z, bool need_odd,
                                  std::span<const c32> w);

/// The seed's Stockham radix-4 forward pass (p == 0 peeled).
void radix4_pass(const c32* src, c32* dst, std::size_t l, std::size_t s, std::span<const c32> w);

}  // namespace turbofno::bench::scalar_ref
