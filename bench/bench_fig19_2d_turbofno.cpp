// Figure 19: 2D TurboFNO (best-of) vs PyTorch heatmaps over (K, batch) for
// 256x128 and 256x256 fields with truncation to 64/128 modes, plus a
// thread-scaling axis for the fused (batch x x-row) parallelization
// (recorded in --json as its own figure).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/parallel.hpp"
#include "sweep2d.hpp"
#include "trace/table.hpp"

namespace {

using namespace turbofno::bench;
using turbofno::fused::Variant;

void heatmap(const Options& opt, std::size_t nx, std::size_t ny, std::size_t modes) {
  const std::vector<std::size_t> ks = opt.full
                                          ? std::vector<std::size_t>{8, 24, 40, 56, 72, 88, 104, 120}
                                          : std::vector<std::size_t>{8, 40, 88};
  const std::vector<std::size_t> bss = opt.full ? std::vector<std::size_t>{1, 16, 32, 48, 64}
                                                : std::vector<std::size_t>{1, 4, 8};

  std::vector<std::string> rows;
  for (const auto b : bss) rows.push_back("BS=" + std::to_string(b));
  std::vector<std::string> cols;
  for (const auto k : ks) cols.push_back(std::to_string(k));
  turbofno::trace::AsciiHeatmap heat(rows, cols);
  turbofno::trace::AsciiHeatmap heat_model(rows, cols);

  double sum = 0.0;
  double best = -1e9;
  std::size_t count = 0;
  for (std::size_t r = 0; r < bss.size(); ++r) {
    for (std::size_t c = 0; c < ks.size(); ++c) {
      const auto prob = make_2d(bss[r], ks[c], nx, ny, modes, modes);
      const auto pr = run_point_2d(
          prob, {Variant::PyTorch, Variant::FftOpt, Variant::FusedFftGemm,
                 Variant::FusedGemmIfft, Variant::FullyFused},
          opt.reps);
      double best_pct = -1e9;
      double best_model = -1e9;
      for (std::size_t i = 1; i < pr.variants.size(); ++i) {
        best_pct = std::max(best_pct, pr.perf_vs_base(i) - 100.0);
        best_model = std::max(best_model, pr.model_perf_vs_base(i) - 100.0);
      }
      heat.set(r, c, best_pct);
      heat_model.set(r, c, best_model);
      sum += best_pct;
      best = std::max(best, best_pct);
      ++count;
    }
  }
  std::printf("Figure 19 heatmap: %zux%zu 2D FFT, N(modes)=%zu — measured speedup vs PyTorch\n",
              nx, ny, modes);
  std::printf("%s\n", heat.str().c_str());
  std::printf("Same grid, A100 cost-model prediction:\n%s\n", heat_model.str().c_str());
  std::printf("grid summary: average %+.1f%%, max %+.1f%% vs PyTorch\n\n",
              sum / static_cast<double>(count), best);
}

// Thread-scaling axis (ROADMAP's threaded-2D-fusion tuning item): the
// fully fused pipeline on one representative shape, swept over worker
// counts with the tuned (batch x x-row) grain.  Points land in the --json
// trajectory so per-PR perf recording captures scaling regressions too.
void thread_scaling(const Options& opt) {
  const auto prob = make_2d(4, 40, 256, 128, 64, 64);
  const std::vector<int> threads = opt.full ? std::vector<int>{1, 2, 4, 8, 16}
                                            : std::vector<int>{1, 2, 4};
  std::vector<PointResult> points;
  for (const int t : threads) {
    turbofno::runtime::set_thread_count(t);
    auto pr = run_point_2d(prob, {Variant::PyTorch, Variant::FullyFused}, opt.reps);
    pr.label = "T=" + std::to_string(t);
    points.push_back(std::move(pr));
  }
  turbofno::runtime::set_thread_count(0);  // restore the hardware default
  print_figure_table(
      "Figure 19 thread scaling: fused 2D (BS=4, K=40, 256x128, modes 64x64), grain=" +
          std::to_string(turbofno::runtime::fused_grain(4 * 64)),
      points);
}

// Real-input (RFFT) lane vs the complex lane: the X axis carries the real
// transform, so only modes_x/2+1 x-rows flow through the Y FFTs, the CGEMM
// and the inverse — roughly half the traffic of the C2C schedule.
void real_vs_complex(const Options& opt) {
  struct Shape {
    std::size_t bs, k, nx, ny, modes;
  };
  const std::vector<Shape> shapes = opt.full ? std::vector<Shape>{{4, 32, 256, 128, 64},
                                                                  {8, 32, 256, 128, 64},
                                                                  {8, 64, 256, 128, 64},
                                                                  {4, 32, 256, 256, 128},
                                                                  {8, 64, 256, 256, 128}}
                                             : std::vector<Shape>{{4, 32, 256, 128, 64},
                                                                  {8, 32, 256, 128, 64},
                                                                  {4, 32, 256, 256, 128}};
  std::vector<PointResult> points;
  for (const auto& s : shapes) {
    auto pr = run_point_2d_real(make_2d(s.bs, s.k, s.nx, s.ny, s.modes, s.modes),
                                Variant::FullyFused, opt.reps);
    pr.label = "BS=" + std::to_string(s.bs) + ",K=" + std::to_string(s.k) + "," +
               std::to_string(s.nx) + "x" + std::to_string(s.ny);
    points.push_back(std::move(pr));
  }
  print_figure_table("Figure 19 real-vs-complex: RFFT lane vs C2C lane (2D fully fused)", points);
  print_summary(points, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  std::printf("== Fig 19: 2D TurboFNO (all optimizations, best-of) vs PyTorch ==\n\n");
  heatmap(opt, 256, 128, 64);
  if (opt.full) {
    heatmap(opt, 256, 128, 128);
    heatmap(opt, 256, 256, 64);
    heatmap(opt, 256, 256, 128);
  }
  thread_scaling(opt);
  real_vs_complex(opt);
  return 0;
}
