#include "bench_common.hpp"

#include <cstdio>
#include <cstring>

#include "core/workload.hpp"
#include "gpusim/pipeline_model.hpp"
#include "runtime/timer.hpp"
#include "trace/csv.hpp"
#include "trace/table.hpp"

namespace turbofno::bench {

Options Options::parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) o.full = true;
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      o.reps = static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return o;
}

const gpusim::GpuSpec& a100() {
  static const gpusim::GpuSpec spec{};
  return spec;
}

namespace {

VariantResult measure(fused::SpectralPipeline1d* p1, fused::SpectralPipeline2d* p2,
                      fused::Variant variant, std::span<const c32> u, std::span<const c32> w,
                      std::span<c32> v, std::size_t reps) {
  VariantResult r;
  r.variant = variant;
  r.name = std::string(fused::variant_name(variant));
  auto body = [&] {
    if (p1 != nullptr) {
      p1->run(u, w, v);
    } else {
      p2->run(u, w, v);
    }
  };
  r.seconds = runtime::time_best_of(reps, body);
  const trace::PipelineCounters& counters = p1 != nullptr ? p1->counters() : p2->counters();
  const auto total = counters.total();
  r.bytes = total.bytes_total();
  r.flops = total.flops;
  r.launches = total.kernel_launches;
  r.model_seconds = gpusim::predict(a100(), counters).total_seconds;
  return r;
}

}  // namespace

PointResult run_point_1d(const baseline::Spectral1dProblem& prob,
                         const std::vector<fused::Variant>& variants, std::size_t reps) {
  AlignedBuffer<c32> u(prob.input_elems());
  AlignedBuffer<c32> w(prob.weight_elems());
  AlignedBuffer<c32> v(prob.output_elems());
  core::fill_random(u.span(), 0xbeefu + static_cast<unsigned>(prob.hidden));
  core::fill_random(w.span(), 0xfeedu);

  PointResult pr;
  for (const auto var : variants) {
    auto pipe = fused::make_pipeline1d(var, prob);
    pr.variants.push_back(measure(pipe.get(), nullptr, var, u.span(), w.span(), v.span(), reps));
  }
  return pr;
}

PointResult run_point_2d(const baseline::Spectral2dProblem& prob,
                         const std::vector<fused::Variant>& variants, std::size_t reps) {
  AlignedBuffer<c32> u(prob.input_elems());
  AlignedBuffer<c32> w(prob.weight_elems());
  AlignedBuffer<c32> v(prob.output_elems());
  core::fill_random(u.span(), 0xabcdu + static_cast<unsigned>(prob.hidden));
  core::fill_random(w.span(), 0xfeedu);

  PointResult pr;
  for (const auto var : variants) {
    auto pipe = fused::make_pipeline2d(var, prob);
    pr.variants.push_back(measure(nullptr, pipe.get(), var, u.span(), w.span(), v.span(), reps));
  }
  return pr;
}

void print_figure_table(const std::string& title, const std::vector<PointResult>& points) {
  std::printf("%s\n", title.c_str());
  if (points.empty()) return;

  std::vector<std::string> header = {"point", "PyTorch(ms)"};
  for (std::size_t i = 1; i < points[0].variants.size(); ++i) {
    header.push_back(points[0].variants[i].name + " cpu%");
    header.push_back(points[0].variants[i].name + " a100%");
  }
  trace::TextTable table(header);
  trace::CsvWriter csv(header);
  for (const auto& p : points) {
    std::vector<std::string> row = {p.label, trace::TextTable::fmt(p.variants[0].seconds * 1e3, 3)};
    for (std::size_t i = 1; i < p.variants.size(); ++i) {
      row.push_back(trace::TextTable::fmt(p.perf_vs_base(i), 1));
      row.push_back(trace::TextTable::fmt(p.model_perf_vs_base(i), 1));
    }
    csv.add_row(row);
    table.add_row(std::move(row));
  }
  std::printf("%s", table.str().c_str());
  std::printf("(100%% = PyTorch parity; >100%% = faster than PyTorch)\n\n");

  // Optional machine-readable copy: set TURBOFNO_CSV_DIR to enable.
  const std::string dir = trace::CsvWriter::env_dir();
  if (!dir.empty()) {
    std::string name = title.substr(0, title.find(':'));
    for (auto& ch : name) {
      if (ch == ' ' || ch == '(' || ch == ')') ch = '_';
    }
    csv.write_to(dir, name);
  }
}

void print_summary(const std::vector<PointResult>& points, std::size_t variant_index) {
  if (points.empty()) return;
  double sum = 0.0;
  double best = 0.0;
  for (const auto& p : points) {
    const double s = p.perf_vs_base(variant_index);
    sum += s;
    best = std::max(best, s);
  }
  std::printf("summary: %s vs PyTorch — average %.1f%%, max %.1f%% (measured, CPU substrate)\n\n",
              points[0].variants[variant_index].name.c_str(), sum / points.size(), best);
}

}  // namespace turbofno::bench
