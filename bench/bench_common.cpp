#include "bench_common.hpp"

#include <cstdio>
#include <cstring>

#include "core/workload.hpp"
#include "gpusim/pipeline_model.hpp"
#include "runtime/timer.hpp"
#include "trace/csv.hpp"
#include "trace/table.hpp"

namespace turbofno::bench {

namespace {

// --json state: path from the last Options::parse plus every figure recorded
// so far.  The file is rewritten after each figure so an interrupted sweep
// still leaves valid JSON on disk.
std::string g_json_path;                                                  // NOLINT
std::vector<std::pair<std::string, std::vector<PointResult>>> g_figures;  // NOLINT

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Options Options::parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) o.full = true;
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      o.reps = static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      o.json = argv[i + 1];
    }
  }
  g_json_path = o.json;
  g_figures.clear();
  return o;
}

void record_json(const std::string& title, const std::vector<PointResult>& points) {
  if (g_json_path.empty()) return;
  g_figures.emplace_back(title, points);

  std::FILE* f = std::fopen(g_json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open --json path '%s'\n", g_json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"figures\": [\n");
  for (std::size_t fi = 0; fi < g_figures.size(); ++fi) {
    const auto& [fig_title, fig_points] = g_figures[fi];
    std::fprintf(f, "    {\n      \"title\": \"%s\",\n      \"points\": [\n",
                 json_escape(fig_title).c_str());
    for (std::size_t pi = 0; pi < fig_points.size(); ++pi) {
      const auto& p = fig_points[pi];
      std::fprintf(f, "        {\"label\": \"%s\", \"variants\": [\n",
                   json_escape(p.label).c_str());
      for (std::size_t vi = 0; vi < p.variants.size(); ++vi) {
        const auto& v = p.variants[vi];
        const double gflops =
            v.seconds > 0.0 ? static_cast<double>(v.flops) / v.seconds * 1e-9 : 0.0;
        std::fprintf(f,
                     "          {\"name\": \"%s\", \"spectral_path\": \"%s\", "
                     "\"seconds\": %.9g, \"gflops\": %.6g, "
                     "\"model_seconds\": %.9g, \"bytes\": %llu, \"flops\": %llu}%s\n",
                     json_escape(v.name).c_str(), json_escape(v.spectral_path).c_str(),
                     v.seconds, gflops, v.model_seconds,
                     static_cast<unsigned long long>(v.bytes),
                     static_cast<unsigned long long>(v.flops),
                     vi + 1 < p.variants.size() ? "," : "");
      }
      std::fprintf(f, "        ]}%s\n", pi + 1 < fig_points.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", fi + 1 < g_figures.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

const gpusim::GpuSpec& a100() {
  static const gpusim::GpuSpec spec{};
  return spec;
}

namespace {

VariantResult measure(fused::SpectralPipeline1d* p1, fused::SpectralPipeline2d* p2,
                      fused::Variant variant, std::span<const c32> u, std::span<const c32> w,
                      std::span<c32> v, std::size_t reps) {
  VariantResult r;
  r.variant = variant;
  r.name = std::string(fused::variant_name(variant));
  auto body = [&] {
    if (p1 != nullptr) {
      p1->run(u, w, v);
    } else {
      p2->run(u, w, v);
    }
  };
  r.seconds = runtime::time_best_of(reps, body);
  const trace::PipelineCounters& counters = p1 != nullptr ? p1->counters() : p2->counters();
  const auto total = counters.total();
  r.bytes = total.bytes_total();
  r.flops = total.flops;
  r.launches = total.kernel_launches;
  r.model_seconds = gpusim::predict(a100(), counters).total_seconds;
  return r;
}

}  // namespace

PointResult run_point_1d(const baseline::Spectral1dProblem& prob,
                         const std::vector<fused::Variant>& variants, std::size_t reps) {
  AlignedBuffer<c32> u(prob.input_elems());
  AlignedBuffer<c32> w(prob.weight_elems());
  AlignedBuffer<c32> v(prob.output_elems());
  core::fill_random(u.span(), 0xbeefu + static_cast<unsigned>(prob.hidden));
  core::fill_random(w.span(), 0xfeedu);

  PointResult pr;
  for (const auto var : variants) {
    auto pipe = fused::make_pipeline1d(var, prob);
    pr.variants.push_back(measure(pipe.get(), nullptr, var, u.span(), w.span(), v.span(), reps));
  }
  return pr;
}

namespace {

// Complex-vs-real lane measurement: reuses measure() for the complex
// baseline, then times the same ladder row's run_batched_real on float
// buffers.  The real row reports the pipeline's own traffic counters, so
// the JSON rows carry the halved half-spectrum bytes/flops too.
void fill_random_real(std::span<float> x, unsigned seed) {
  // Derive the real samples from the same generator the complex fills use
  // (real parts only) so the two lanes see comparable signal content.
  AlignedBuffer<c32> tmp(x.size());
  core::fill_random(tmp.span(), seed);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = tmp[i].re;
}

template <typename Pipe>
VariantResult measure_real(Pipe& pipe, fused::Variant variant, std::span<const float> u,
                           std::span<const c32> w, std::span<float> v, std::size_t batch,
                           std::size_t reps) {
  VariantResult r;
  r.variant = variant;
  r.name = std::string(fused::variant_name(variant)) + " (real)";
  r.spectral_path = "real";
  r.seconds = runtime::time_best_of(reps, [&] { pipe.run_batched_real(u, w, v, batch); });
  const auto total = pipe.counters().total();
  r.bytes = total.bytes_total();
  r.flops = total.flops;
  r.launches = total.kernel_launches;
  r.model_seconds = gpusim::predict(a100(), pipe.counters()).total_seconds;
  return r;
}

}  // namespace

PointResult run_point_1d_real(const baseline::Spectral1dProblem& prob, fused::Variant variant,
                              std::size_t reps) {
  AlignedBuffer<c32> u(prob.input_elems());
  AlignedBuffer<c32> w(prob.weight_elems());
  AlignedBuffer<c32> v(prob.output_elems());
  core::fill_random(u.span(), 0xbeefu + static_cast<unsigned>(prob.hidden));
  core::fill_random(w.span(), 0xfeedu);

  PointResult pr;
  auto cpipe = fused::make_pipeline1d(variant, prob);
  pr.variants.push_back(measure(cpipe.get(), nullptr, variant, u.span(), w.span(), v.span(), reps));

  AlignedBuffer<float> ur(prob.input_elems());
  AlignedBuffer<float> vr(prob.output_elems());
  fill_random_real(ur.span(), 0xbeefu + static_cast<unsigned>(prob.hidden));
  auto rpipe = fused::make_pipeline1d(variant, prob, /*real_input=*/true);
  pr.variants.push_back(
      measure_real(*rpipe, variant, ur.span(), w.span(), vr.span(), prob.batch, reps));
  return pr;
}

PointResult run_point_2d_real(const baseline::Spectral2dProblem& prob, fused::Variant variant,
                              std::size_t reps) {
  AlignedBuffer<c32> u(prob.input_elems());
  AlignedBuffer<c32> w(prob.weight_elems());
  AlignedBuffer<c32> v(prob.output_elems());
  core::fill_random(u.span(), 0xabcdu + static_cast<unsigned>(prob.hidden));
  core::fill_random(w.span(), 0xfeedu);

  PointResult pr;
  auto cpipe = fused::make_pipeline2d(variant, prob);
  pr.variants.push_back(measure(nullptr, cpipe.get(), variant, u.span(), w.span(), v.span(), reps));

  AlignedBuffer<float> ur(prob.input_elems());
  AlignedBuffer<float> vr(prob.output_elems());
  fill_random_real(ur.span(), 0xabcdu + static_cast<unsigned>(prob.hidden));
  auto rpipe = fused::make_pipeline2d(variant, prob, /*real_input=*/true);
  pr.variants.push_back(
      measure_real(*rpipe, variant, ur.span(), w.span(), vr.span(), prob.batch, reps));
  return pr;
}

PointResult run_point_2d(const baseline::Spectral2dProblem& prob,
                         const std::vector<fused::Variant>& variants, std::size_t reps) {
  AlignedBuffer<c32> u(prob.input_elems());
  AlignedBuffer<c32> w(prob.weight_elems());
  AlignedBuffer<c32> v(prob.output_elems());
  core::fill_random(u.span(), 0xabcdu + static_cast<unsigned>(prob.hidden));
  core::fill_random(w.span(), 0xfeedu);

  PointResult pr;
  for (const auto var : variants) {
    auto pipe = fused::make_pipeline2d(var, prob);
    pr.variants.push_back(measure(nullptr, pipe.get(), var, u.span(), w.span(), v.span(), reps));
  }
  return pr;
}

void print_figure_table(const std::string& title, const std::vector<PointResult>& points) {
  std::printf("%s\n", title.c_str());
  if (points.empty()) return;

  std::vector<std::string> header = {"point", points[0].variants[0].name + "(ms)"};
  for (std::size_t i = 1; i < points[0].variants.size(); ++i) {
    header.push_back(points[0].variants[i].name + " cpu%");
    header.push_back(points[0].variants[i].name + " a100%");
  }
  trace::TextTable table(header);
  trace::CsvWriter csv(header);
  for (const auto& p : points) {
    std::vector<std::string> row = {p.label, trace::TextTable::fmt(p.variants[0].seconds * 1e3, 3)};
    for (std::size_t i = 1; i < p.variants.size(); ++i) {
      row.push_back(trace::TextTable::fmt(p.perf_vs_base(i), 1));
      row.push_back(trace::TextTable::fmt(p.model_perf_vs_base(i), 1));
    }
    csv.add_row(row);
    table.add_row(std::move(row));
  }
  std::printf("%s", table.str().c_str());
  std::printf("(100%% = PyTorch parity; >100%% = faster than PyTorch)\n\n");

  record_json(title, points);

  // Optional machine-readable copy: set TURBOFNO_CSV_DIR to enable.
  const std::string dir = trace::CsvWriter::env_dir();
  if (!dir.empty()) {
    std::string name = title.substr(0, title.find(':'));
    for (auto& ch : name) {
      if (ch == ' ' || ch == '(' || ch == ')') ch = '_';
    }
    csv.write_to(dir, name);
  }
}

void print_summary(const std::vector<PointResult>& points, std::size_t variant_index) {
  if (points.empty()) return;
  double sum = 0.0;
  double best = 0.0;
  for (const auto& p : points) {
    const double s = p.perf_vs_base(variant_index);
    sum += s;
    best = std::max(best, s);
  }
  std::printf("summary: %s vs PyTorch — average %.1f%%, max %.1f%% (measured, CPU substrate)\n\n",
              points[0].variants[variant_index].name.c_str(), sum / points.size(), best);
}

}  // namespace turbofno::bench
