// Figure 18: 2D fully fused FFT-CGEMM-iFFT.
#include "sweep2d.hpp"

int main(int argc, char** argv) {
  using namespace turbofno::bench;
  using turbofno::fused::Variant;
  const Options opt = Options::parse(argc, argv);
  std::printf("== Fig 18: 2D fully fused FFT-CGEMM-iFFT (D) ==\n\n");
  run_2d_figure(18, "Fused_FFT_GEMM_iFFT", opt,
                {Variant::PyTorch, Variant::FftOpt, Variant::FusedFftGemm,
                 Variant::FusedGemmIfft, Variant::FullyFused});
  return 0;
}
