// Micro-benchmarks of the custom FFT kernels (the Section 3 claim that the
// from-scratch kernels are competitive): throughput across sizes, pruned vs
// full, strided vs contiguous, and the naive-DFT sanity anchor.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/workload.hpp"
#include "fft/fft2d.hpp"
#include "fft/plan.hpp"
#include "fft/reference.hpp"
#include "runtime/parallel.hpp"
#include "tensor/aligned_buffer.hpp"

namespace {

using namespace turbofno;

fft::FftPlan plan_of(std::size_t n, fft::Direction dir, std::size_t keep = 0,
                     std::size_t nonzero = 0) {
  fft::PlanDesc d;
  d.n = n;
  d.dir = dir;
  d.keep = keep;
  d.nonzero = nonzero;
  return fft::FftPlan(d);
}

void BM_FftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t batch = 1 << 14;
  AlignedBuffer<c32> in(batch * n);
  AlignedBuffer<c32> out(batch * n);
  core::fill_random(in.span(), 1u);
  const auto plan = plan_of(n, fft::Direction::Forward);
  for (auto _ : state) {
    plan.execute(in.span(), out.span(), batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * batch * n * 2 * sizeof(c32));
  state.counters["signals/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(batch),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FftForward)->Arg(64)->Arg(128)->Arg(256)->Arg(1024)->Arg(4096)->UseRealTime();

void BM_FftTruncated(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t keep = n / 4;
  const std::size_t batch = 1 << 14;
  AlignedBuffer<c32> in(batch * n);
  AlignedBuffer<c32> out(batch * keep);
  core::fill_random(in.span(), 2u);
  const auto plan = plan_of(n, fft::Direction::Forward, keep);
  for (auto _ : state) {
    plan.execute(in.span(), out.span(), batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * batch * (n + keep) *
                          sizeof(c32));
}
BENCHMARK(BM_FftTruncated)->Arg(128)->Arg(256)->Arg(1024)->UseRealTime();

void BM_IfftZeroPadded(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t nonzero = n / 4;
  const std::size_t batch = 1 << 14;
  AlignedBuffer<c32> in(batch * nonzero);
  AlignedBuffer<c32> out(batch * n);
  core::fill_random(in.span(), 3u);
  const auto plan = plan_of(n, fft::Direction::Inverse, 0, nonzero);
  for (auto _ : state) {
    plan.execute(in.span(), out.span(), batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * batch * (n + nonzero) *
                          sizeof(c32));
}
BENCHMARK(BM_IfftZeroPadded)->Arg(128)->Arg(256)->Arg(1024)->UseRealTime();

void BM_FftStridedAlongHidden(benchmark::State& state) {
  // The k-loop-aligned access pattern of the fused kernel: element stride K.
  const std::size_t n = 256;
  const std::size_t k_channels = static_cast<std::size_t>(state.range(0));
  AlignedBuffer<c32> in(n * k_channels);
  AlignedBuffer<c32> out(n * k_channels);
  core::fill_random(in.span(), 4u);
  const auto plan = plan_of(n, fft::Direction::Forward);
  fft::ExecLayout layout;
  layout.in_elem_stride = static_cast<std::ptrdiff_t>(k_channels);
  layout.in_batch_stride = 1;
  layout.out_elem_stride = 1;
  layout.out_batch_stride = static_cast<std::ptrdiff_t>(n);
  for (auto _ : state) {
    plan.execute_strided(in.data(), out.data(), k_channels, layout);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftStridedAlongHidden)->Arg(8)->Arg(64)->Arg(128);

// 2D schedules A/B: arg0 = nx = ny, arg1 selects the schedule:
//   0  legacy per-column strided X stage (TURBOFNO_FFT2D_TRANSPOSE=0)
//   1  transpose-based X stage, unfused middle (TURBOFNO_FUSED_MID=0)
//   2  transpose-based X stage + fused middle tiles (the default)
// All three are bitwise-identical; the knobs are forced per run.  The
// batch is sized to the thread count so sched=2 actually passes
// FftPlan2d's batch >= thread_count() gate on multi-core hosts (the fused
// middle parallelizes across fields only).  Exception by design: the
// DENSE 512^2 forward's 2 MiB per-field tile exceeds the 1 MiB L2 budget,
// so its sched=2 arm measures the default path's intended fallback (equal
// to sched=1); the truncated round trip stays under the budget everywhere.
struct Sched2dGuard {
  bool prev_tr = fft::fft2d_transpose_enabled();
  bool prev_mid = fft::fused_mid_enabled();
  explicit Sched2dGuard(int sched) {
    fft::set_fft2d_transpose(sched != 0);
    fft::set_fused_mid(sched == 2);
  }
  ~Sched2dGuard() {
    fft::set_fft2d_transpose(prev_tr);
    fft::set_fused_mid(prev_mid);
  }
};

const char* sched2d_label(int sched) {
  return sched == 0 ? "per-column" : (sched == 1 ? "transposed" : "fused-mid");
}

void BM_Fft2dForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int sched = static_cast<int>(state.range(1));
  const std::size_t batch =
      std::max<std::size_t>(2, static_cast<std::size_t>(runtime::thread_count()));
  fft::Plan2dDesc d;
  d.nx = n;
  d.ny = n;
  d.dir = fft::Direction::Forward;
  const fft::FftPlan2d plan(d);
  AlignedBuffer<c32> in(batch * n * n);
  AlignedBuffer<c32> out(batch * n * n);
  core::fill_random(in.span(), 6u);
  const Sched2dGuard guard(sched);
  for (auto _ : state) {
    plan.execute(in.span(), out.span(), batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * batch * n * n * 2 *
                          sizeof(c32));
  state.SetLabel(sched2d_label(sched));
}
BENCHMARK(BM_Fft2dForward)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({512, 2})
    ->UseRealTime();

// The FNO shape: forward truncated to n/4 modes per axis, then the
// zero-padded inverse — the exact X stages the 2D pipelines run.
void BM_Fft2dTruncRoundTrip(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int sched = static_cast<int>(state.range(1));
  const std::size_t keep = n / 4;
  const std::size_t batch =
      std::max<std::size_t>(2, static_cast<std::size_t>(runtime::thread_count()));
  fft::Plan2dDesc d;
  d.nx = n;
  d.ny = n;
  d.keep_x = keep;
  d.keep_y = keep;
  d.dir = fft::Direction::Forward;
  const fft::FftPlan2d fwd(d);
  d.dir = fft::Direction::Inverse;
  const fft::FftPlan2d inv(d);
  AlignedBuffer<c32> in(batch * n * n);
  AlignedBuffer<c32> spec(batch * keep * keep);
  AlignedBuffer<c32> back(batch * n * n);
  core::fill_random(in.span(), 7u);
  const Sched2dGuard guard(sched);
  for (auto _ : state) {
    fwd.execute(in.span(), spec.span(), batch);
    inv.execute(spec.span(), back.span(), batch);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetLabel(sched2d_label(sched));
}
BENCHMARK(BM_Fft2dTruncRoundTrip)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({512, 2})
    ->UseRealTime();

void BM_NaiveDftAnchor(benchmark::State& state) {
  // O(n^2) reference at a small size: shows the custom kernel's advantage.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  AlignedBuffer<c32> in(n);
  AlignedBuffer<c32> out(n);
  core::fill_random(in.span(), 5u);
  for (auto _ : state) {
    fft::reference_dft(in.span(), out.span(), n);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_NaiveDftAnchor)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
