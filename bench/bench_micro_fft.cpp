// Micro-benchmarks of the custom FFT kernels (the Section 3 claim that the
// from-scratch kernels are competitive): throughput across sizes, pruned vs
// full, strided vs contiguous, and the naive-DFT sanity anchor.
#include <benchmark/benchmark.h>

#include "core/workload.hpp"
#include "fft/fft2d.hpp"
#include "fft/plan.hpp"
#include "fft/reference.hpp"
#include "tensor/aligned_buffer.hpp"

namespace {

using namespace turbofno;

fft::FftPlan plan_of(std::size_t n, fft::Direction dir, std::size_t keep = 0,
                     std::size_t nonzero = 0) {
  fft::PlanDesc d;
  d.n = n;
  d.dir = dir;
  d.keep = keep;
  d.nonzero = nonzero;
  return fft::FftPlan(d);
}

void BM_FftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t batch = 1 << 14;
  AlignedBuffer<c32> in(batch * n);
  AlignedBuffer<c32> out(batch * n);
  core::fill_random(in.span(), 1u);
  const auto plan = plan_of(n, fft::Direction::Forward);
  for (auto _ : state) {
    plan.execute(in.span(), out.span(), batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * batch * n * 2 * sizeof(c32));
  state.counters["signals/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(batch),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FftForward)->Arg(64)->Arg(128)->Arg(256)->Arg(1024)->Arg(4096)->UseRealTime();

void BM_FftTruncated(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t keep = n / 4;
  const std::size_t batch = 1 << 14;
  AlignedBuffer<c32> in(batch * n);
  AlignedBuffer<c32> out(batch * keep);
  core::fill_random(in.span(), 2u);
  const auto plan = plan_of(n, fft::Direction::Forward, keep);
  for (auto _ : state) {
    plan.execute(in.span(), out.span(), batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * batch * (n + keep) *
                          sizeof(c32));
}
BENCHMARK(BM_FftTruncated)->Arg(128)->Arg(256)->Arg(1024)->UseRealTime();

void BM_IfftZeroPadded(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t nonzero = n / 4;
  const std::size_t batch = 1 << 14;
  AlignedBuffer<c32> in(batch * nonzero);
  AlignedBuffer<c32> out(batch * n);
  core::fill_random(in.span(), 3u);
  const auto plan = plan_of(n, fft::Direction::Inverse, 0, nonzero);
  for (auto _ : state) {
    plan.execute(in.span(), out.span(), batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * batch * (n + nonzero) *
                          sizeof(c32));
}
BENCHMARK(BM_IfftZeroPadded)->Arg(128)->Arg(256)->Arg(1024)->UseRealTime();

void BM_FftStridedAlongHidden(benchmark::State& state) {
  // The k-loop-aligned access pattern of the fused kernel: element stride K.
  const std::size_t n = 256;
  const std::size_t k_channels = static_cast<std::size_t>(state.range(0));
  AlignedBuffer<c32> in(n * k_channels);
  AlignedBuffer<c32> out(n * k_channels);
  core::fill_random(in.span(), 4u);
  const auto plan = plan_of(n, fft::Direction::Forward);
  fft::ExecLayout layout;
  layout.in_elem_stride = static_cast<std::ptrdiff_t>(k_channels);
  layout.in_batch_stride = 1;
  layout.out_elem_stride = 1;
  layout.out_batch_stride = static_cast<std::ptrdiff_t>(n);
  for (auto _ : state) {
    plan.execute_strided(in.data(), out.data(), k_channels, layout);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftStridedAlongHidden)->Arg(8)->Arg(64)->Arg(128);

// 2D schedules A/B: arg0 = nx = ny, arg1 = 1 for the transpose-based
// X stage, 0 for the legacy per-column strided one (the
// TURBOFNO_FFT2D_TRANSPOSE knob, forced per run).
void BM_Fft2dForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool transposed = state.range(1) != 0;
  const std::size_t batch = 2;
  fft::Plan2dDesc d;
  d.nx = n;
  d.ny = n;
  d.dir = fft::Direction::Forward;
  const fft::FftPlan2d plan(d);
  AlignedBuffer<c32> in(batch * n * n);
  AlignedBuffer<c32> out(batch * n * n);
  core::fill_random(in.span(), 6u);
  const bool prev = fft::fft2d_transpose_enabled();
  fft::set_fft2d_transpose(transposed);
  for (auto _ : state) {
    plan.execute(in.span(), out.span(), batch);
    benchmark::DoNotOptimize(out.data());
  }
  fft::set_fft2d_transpose(prev);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * batch * n * n * 2 *
                          sizeof(c32));
  state.SetLabel(transposed ? "transposed" : "per-column");
}
BENCHMARK(BM_Fft2dForward)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->UseRealTime();

// The FNO shape: forward truncated to n/4 modes per axis, then the
// zero-padded inverse — the exact X stages the 2D pipelines run.
void BM_Fft2dTruncRoundTrip(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool transposed = state.range(1) != 0;
  const std::size_t keep = n / 4;
  const std::size_t batch = 2;
  fft::Plan2dDesc d;
  d.nx = n;
  d.ny = n;
  d.keep_x = keep;
  d.keep_y = keep;
  d.dir = fft::Direction::Forward;
  const fft::FftPlan2d fwd(d);
  d.dir = fft::Direction::Inverse;
  const fft::FftPlan2d inv(d);
  AlignedBuffer<c32> in(batch * n * n);
  AlignedBuffer<c32> spec(batch * keep * keep);
  AlignedBuffer<c32> back(batch * n * n);
  core::fill_random(in.span(), 7u);
  const bool prev = fft::fft2d_transpose_enabled();
  fft::set_fft2d_transpose(transposed);
  for (auto _ : state) {
    fwd.execute(in.span(), spec.span(), batch);
    inv.execute(spec.span(), back.span(), batch);
    benchmark::DoNotOptimize(back.data());
  }
  fft::set_fft2d_transpose(prev);
  state.SetLabel(transposed ? "transposed" : "per-column");
}
BENCHMARK(BM_Fft2dTruncRoundTrip)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->UseRealTime();

void BM_NaiveDftAnchor(benchmark::State& state) {
  // O(n^2) reference at a small size: shows the custom kernel's advantage.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  AlignedBuffer<c32> in(n);
  AlignedBuffer<c32> out(n);
  core::fill_random(in.span(), 5u);
  for (auto _ : state) {
    fft::reference_dft(in.span(), out.span(), n);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_NaiveDftAnchor)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
