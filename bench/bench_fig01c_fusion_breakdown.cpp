// Figure 1(c): the stage-time decomposition motivating TurboFNO — the
// PyTorch pipeline's FFT / MemCopy / CGEMM / MemCopy / iFFT bars against the
// single fused FFT-GEMM-iFFT bar, measured and A100-modeled.
#include <cstdio>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "gpusim/pipeline_model.hpp"
#include "runtime/env.hpp"
#include "runtime/timer.hpp"
#include "trace/table.hpp"

int main(int argc, char** argv) {
  using namespace turbofno;
  using namespace turbofno::bench;
  const Options opt = Options::parse(argc, argv);

  baseline::Spectral1dProblem prob;
  prob.batch = opt.full ? 4096 : 1024;
  prob.hidden = 64;
  prob.out_dim = 64;
  prob.n = 256;
  prob.modes = 64;

  AlignedBuffer<c32> u(prob.input_elems());
  AlignedBuffer<c32> w(prob.weight_elems());
  AlignedBuffer<c32> v(prob.output_elems());
  core::fill_random(u.span(), 1u);
  core::fill_random(w.span(), 2u);

  std::printf("== Fig 1(c): stage decomposition, BS=%zu K=%zu N=%zu modes=%zu ==\n\n",
              prob.batch, prob.hidden, prob.n, prob.modes);

  auto base = fused::make_pipeline1d(fused::Variant::PyTorch, prob);
  auto fusedp = fused::make_pipeline1d(fused::Variant::FullyFused, prob);
  // Warm + measure (counters carry per-stage seconds of the last run).
  for (int i = 0; i < 2; ++i) base->run(u.span(), w.span(), v.span());
  for (int i = 0; i < 2; ++i) fusedp->run(u.span(), w.span(), v.span());

  const auto report = [&](const trace::PipelineCounters& pc) {
    const auto pred = gpusim::predict(a100(), pc);
    trace::TextTable t({"stage", "cpu ms", "GB moved", "a100 model ms", "bound"});
    for (std::size_t i = 0; i < pc.stages().size(); ++i) {
      const auto& s = pc.stages()[i];
      const auto& m = pred.stages[i];
      const char* bound = m.cost.bound == gpusim::Bound::Memory    ? "memory"
                          : m.cost.bound == gpusim::Bound::Compute ? "compute"
                                                                   : "launch";
      t.add_row({s.name, trace::TextTable::fmt(s.seconds * 1e3, 3),
                 trace::TextTable::fmt(static_cast<double>(s.bytes_total()) / 1e9, 3),
                 trace::TextTable::fmt(m.cost.seconds * 1e3, 3), bound});
    }
    const auto total = pc.total();
    t.add_row({"TOTAL", trace::TextTable::fmt(total.seconds * 1e3, 3),
               trace::TextTable::fmt(static_cast<double>(total.bytes_total()) / 1e9, 3),
               trace::TextTable::fmt(pred.total_seconds * 1e3, 3), ""});
    std::printf("%s:\n%s\n", pc.name().c_str(), t.str().c_str());
  };

  report(base->counters());
  report(fusedp->counters());

  const auto tb = base->counters().total();
  const auto tf = fusedp->counters().total();
  std::printf("measured fusion speedup: %.2fx (CPU substrate)\n", tb.seconds / tf.seconds);
  std::printf("modeled  fusion speedup: %.2fx (A100 cost model)\n",
              gpusim::predicted_speedup(a100(), base->counters(), fusedp->counters()));
  std::printf("global-memory traffic reduction: %.2fx (%s -> %s)\n",
              static_cast<double>(tb.bytes_total()) / static_cast<double>(tf.bytes_total()),
              runtime::format_bytes(static_cast<double>(tb.bytes_total())).c_str(),
              runtime::format_bytes(static_cast<double>(tf.bytes_total())).c_str());
  std::printf("kernel launches: %llu -> %llu\n",
              static_cast<unsigned long long>(tb.kernel_launches),
              static_cast<unsigned long long>(tf.kernel_launches));
  return 0;
}
