// Table 1: the CGEMM and FFT kernel parameter setup, printed from the live
// template configurations (so drift between docs and code is impossible).
#include <cstdio>

#include "bench_common.hpp"
#include "fft/opcount.hpp"
#include "gemm/config.hpp"
#include "trace/table.hpp"

int main(int argc, char** argv) {
  using namespace turbofno;
  (void)bench::Options::parse(argc, argv);

  std::printf("== Table 1: kernel parameter setup ==\n\n");

  {
    trace::TextTable t({"kernel", "m_tb", "n_tb", "k_tb", "m_w", "n_w", "m_t", "n_t"});
    const auto fused_shape = gemm::shape_of<gemm::FusedTiles>();
    t.add_row({"CGEMM (fused, Table 1)", std::to_string(fused_shape.mtb),
               std::to_string(fused_shape.ntb), std::to_string(fused_shape.ktb),
               std::to_string(gemm::kWarpTileM), std::to_string(gemm::kWarpTileN),
               std::to_string(fused_shape.mt), std::to_string(fused_shape.nt)});
    const auto alone = gemm::shape_of<gemm::StandaloneTiles>();
    t.add_row({"CGEMM (standalone, Sec 3.1)", std::to_string(alone.mtb),
               std::to_string(alone.ntb), std::to_string(alone.ktb),
               std::to_string(gemm::kWarpTileM), std::to_string(gemm::kWarpTileN),
               std::to_string(alone.mt), std::to_string(alone.nt)});
    std::printf("%s\n", t.str().c_str());
  }

  {
    // FFT row: N1/N2 threadblock-level signal lengths, n1/n2 per-thread FFT
    // sizes, bs = signals per block (== k_tb for dataflow compatibility).
    trace::TextTable t({"kernel", "N1", "N2", "n1", "n2", "bs"});
    t.add_row({"FFT", "128", "256", "8", "16", std::to_string(gemm::FusedTiles::Ktb)});
    std::printf("%s\n", t.str().c_str());
    std::printf("bs == k_tb = %zu: the FFT batch per block matches the CGEMM k-loop tile,\n"
                "the alignment that makes the fusion of Figure 6 possible.\n\n",
                gemm::FusedTiles::Ktb);
  }

  // Sanity prints proving the instantiations exist and the pruned op counts
  // at the Table 1 sizes.
  std::printf("pruned unit ops at Table 1 FFT sizes (keep 64 modes):\n");
  std::printf("  128-pt: %llu of %llu\n",
              static_cast<unsigned long long>(fft::count_pruned_ops(128, 64, 128).unit_ops),
              static_cast<unsigned long long>(fft::count_full_ops(128).unit_ops));
  std::printf("  256-pt: %llu of %llu\n",
              static_cast<unsigned long long>(fft::count_pruned_ops(256, 64, 256).unit_ops),
              static_cast<unsigned long long>(fft::count_full_ops(256).unit_ops));
  return 0;
}
