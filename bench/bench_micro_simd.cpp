// Scalar vs SIMD backend shoot-out on the CGEMM and FFT micro-kernels.
//
// Unlike the figure benches (which compare pipeline variants), this bench
// pits the scalar backend against the compiled-in SIMD backend on the exact
// register/butterfly kernels the pipelines run, at the paper's Table-1
// shapes, so the explicit-SIMD layer's speedup is a printed,
// regression-checkable number:
//
//   cgemm-micro     the Mtb x Ntb x Ktb register-tile kernel (FusedTiles,
//                   32x32x8, Mt = Nt = 4): interleaved scalar kernel vs the
//                   split-complex vector kernel on identical packed panels.
//   cgemm-full      the whole blocked CGEMM at the fused FNO shape.
//   fft-dif-block   the pruned-DIF block butterfly (the fused pipelines'
//                   FFT inner loop).
//   fft-radix4-q    one Stockham radix-4 pass at s = 64 (the batched FFT's
//                   vector sweep).
//
// The scalar side comes from simd_scalar_ref.cpp, which is compiled with
// AVX/FMA codegen disabled so it matches what a TURBOFNO_SIMD=scalar build
// actually executes (x86-64 baseline auto-vectorization), not "the scalar
// source blessed with this binary's -mavx2 flags".
//
// With --json <path>, emits {kernels: [{name, scalar_seconds, simd_seconds,
// scalar_gflops, simd_gflops, speedup}]} for the perf trajectory.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "fft/kernels.hpp"
#include "fft/twiddle.hpp"
#include "gemm/cgemm.hpp"
#include "gemm/micro_kernel.hpp"
#include "gemm/pack.hpp"
#include "runtime/parallel.hpp"
#include "runtime/timer.hpp"
#include "simd_scalar_ref.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/simd.hpp"
#include "trace/counters.hpp"

namespace {

using namespace turbofno;
namespace scalar_ref = turbofno::bench::scalar_ref;

using Cfg = gemm::FusedTiles;  // paper Table 1: 32x32x8, Mt = Nt = 4

struct KernelResult {
  std::string name;
  double scalar_seconds = 0.0;
  double simd_seconds = 0.0;
  double flops = 0.0;  // per timed pass

  [[nodiscard]] double speedup() const { return scalar_seconds / simd_seconds; }
  [[nodiscard]] double gflops(double seconds) const { return flops / seconds * 1e-9; }
};

// ------------------------------------------------------- cgemm micro-kernel

template <class B>
void run_micro_simd(float* acc_split, const float* Apack, const float* Bpack, std::size_t kc) {
  constexpr std::size_t JW = gemm::kJBlock<B, Cfg::Nt>;
  for (std::size_t ii = 0; ii < Cfg::Mtb; ii += Cfg::Mt) {
    for (std::size_t jj = 0; jj < Cfg::Ntb; jj += JW) {
      gemm::micro_accumulate_split<B, Cfg::Mt, JW, Cfg::Mtb, Cfg::Ntb>(acc_split, Apack, Bpack,
                                                                       kc, ii, jj);
    }
  }
}

KernelResult bench_cgemm_micro(std::size_t reps) {
  // Packed panels for one K-block, repeated many times so the working set
  // stays L1-resident and the measurement isolates the register kernel.
  AlignedBuffer<c32> A(Cfg::Mtb * Cfg::Ktb);
  AlignedBuffer<c32> Bm(Cfg::Ktb * Cfg::Ntb);
  core::fill_random(A.span(), 11u);
  core::fill_random(Bm.span(), 12u);

  AlignedBuffer<c32> Apack(Cfg::Mtb * Cfg::Ktb);
  AlignedBuffer<c32> Bpack(Cfg::Ntb * Cfg::Ktb);
  gemm::pack_a_tile<Cfg::Mtb, Cfg::Ktb>(Apack.data(), A.data(), Cfg::Ktb, 0, 0, Cfg::Mtb,
                                        Cfg::Ktb);
  gemm::pack_b_tile<Cfg::Ntb, Cfg::Ktb>(Bpack.data(), Bm.data(), Cfg::Ntb, 0, 0, Cfg::Ktb,
                                        Cfg::Ntb);

  AlignedBuffer<float> ApackS(2 * Cfg::Mtb * Cfg::Ktb);
  AlignedBuffer<float> BpackS(2 * Cfg::Ntb * Cfg::Ktb);
  gemm::pack_a_tile_split<Cfg::Mtb, Cfg::Ktb>(ApackS.data(), A.data(), Cfg::Ktb, 0, 0, Cfg::Mtb,
                                              Cfg::Ktb);
  gemm::pack_b_tile_split<Cfg::Ntb, Cfg::Ktb>(BpackS.data(), Bm.data(), Cfg::Ntb, 0, 0, Cfg::Ktb,
                                              Cfg::Ntb);

  AlignedBuffer<c32> acc(Cfg::Mtb * Cfg::Ntb);
  AlignedBuffer<float> accS(2 * Cfg::Mtb * Cfg::Ntb);

  constexpr std::size_t kInner = 2048;  // tile passes per timed rep
  KernelResult r;
  r.name = "cgemm-micro-32x32x8";
  r.flops = static_cast<double>(trace::cgemm_flops(Cfg::Mtb, Cfg::Ntb, Cfg::Ktb)) * kInner;

  r.scalar_seconds = runtime::time_best_of(reps, [&] {
    for (std::size_t it = 0; it < kInner; ++it) {
      scalar_ref::micro_cgemm_pass(acc.data(), Apack.data(), Bpack.data(), Cfg::Ktb);
    }
  });
  r.simd_seconds = runtime::time_best_of(reps, [&] {
    for (std::size_t it = 0; it < kInner; ++it) {
      run_micro_simd<simd::Active>(accS.data(), ApackS.data(), BpackS.data(), Cfg::Ktb);
    }
  });
  return r;
}

// ---------------------------------------------------------------- full cgemm

KernelResult bench_cgemm_full(std::size_t reps) {
  // The fused FNO GEMM shape: M = signals * modes (tall), N = modes-tile,
  // K = hidden (paper Table 1 fused config drives N < 48 through FusedTiles).
  const std::size_t M = 4096;
  const std::size_t N = 32;
  const std::size_t K = 64;
  AlignedBuffer<c32> A(M * K);
  AlignedBuffer<c32> Bm(K * N);
  AlignedBuffer<c32> C(M * N);
  core::fill_random(A.span(), 21u);
  core::fill_random(Bm.span(), 22u);

  KernelResult r;
  r.name = "cgemm-full-4096x32x64";
  r.flops = static_cast<double>(trace::cgemm_flops(M, N, K));
  r.scalar_seconds = runtime::time_best_of(reps, [&] {
    scalar_ref::cgemm_fused_tiles(M, N, K, c32{1.0f, 0.0f}, A.data(), K, Bm.data(), N,
                                  c32{0.0f, 0.0f}, C.data(), N);
  });
  r.simd_seconds = runtime::time_best_of(reps, [&] {
    gemm::cgemm_tiled_backend<Cfg, simd::Active>(M, N, K, c32{1.0f, 0.0f}, A.data(), K, Bm.data(),
                                                 N, c32{0.0f, 0.0f}, C.data(), N);
  });
  return r;
}

// ------------------------------------------------------------- fft kernels

KernelResult bench_fft_dif_block(std::size_t reps) {
  // The first pruned-DIF stage of the fused forward FFT at the paper's
  // 1D shape (n = 128, 50% truncation): full block, dense prefix.
  const std::size_t n = 128;
  const std::size_t half = n / 2;
  const fft::TwiddleTable& tw = fft::twiddles_for(n);
  const std::span<const c32> w = tw.forward(n);

  AlignedBuffer<c32> buf(n);
  core::fill_random(buf.span(), 31u);

  constexpr std::size_t kInner = 8192;
  KernelResult r;
  r.name = "fft-dif-block-128";
  // 2 unit butterflies per j, 10 flops each under the Figure-5 convention.
  r.flops = static_cast<double>(half) * 2.0 * 10.0 * kInner;

  r.scalar_seconds = runtime::time_best_of(reps, [&] {
    for (std::size_t it = 0; it < kInner; ++it) {
      scalar_ref::dif_block_butterfly(buf.data(), half, n, true, w);
    }
  });
  r.simd_seconds = runtime::time_best_of(reps, [&] {
    for (std::size_t it = 0; it < kInner; ++it) {
      fft::kernels::block_butterfly<simd::Active>(buf.data(), half, n, true, w);
    }
  });
  return r;
}

KernelResult bench_fft_radix4_pass(std::size_t reps) {
  // One radix-4 Stockham pass with s = 64 contiguous butterflies per group
  // (the q-loop the batched FFT spends its time in at n = 256).
  const std::size_t l = 4;
  const std::size_t s = 64;
  const std::size_t n = 4 * l * s;  // 1024 elements flowing through the pass
  const fft::TwiddleTable& tw = fft::twiddles_for(4 * l);
  const std::span<const c32> w = tw.forward(4 * l);

  AlignedBuffer<c32> src(n);
  AlignedBuffer<c32> dst(n);
  core::fill_random(src.span(), 41u);

  constexpr std::size_t kInner = 4096;
  KernelResult r;
  r.name = "fft-radix4-pass-s64";
  // A radix-4 butterfly is 3 unit ops (Figure 5), 10 flops per unit op.
  r.flops = static_cast<double>(l * s) * 3.0 * 10.0 * kInner;

  r.scalar_seconds = runtime::time_best_of(reps, [&] {
    for (std::size_t it = 0; it < kInner; ++it) {
      scalar_ref::radix4_pass(src.data(), dst.data(), l, s, w);
    }
  });
  r.simd_seconds = runtime::time_best_of(reps, [&] {
    for (std::size_t it = 0; it < kInner; ++it) {
      fft::kernels::pass_radix4<simd::Active, false>(src.data(), dst.data(), l, s, w);
    }
  });
  return r;
}

void write_json(const std::string& path, const std::vector<KernelResult>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro_simd: cannot open --json path '%s'\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"active_backend\": \"%s\",\n  \"kernels\": [\n",
               simd::active_backend());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"scalar_seconds\": %.9g, \"simd_seconds\": %.9g, "
                 "\"scalar_gflops\": %.6g, \"simd_gflops\": %.6g, \"speedup\": %.4g}%s\n",
                 r.name.c_str(), r.scalar_seconds, r.simd_seconds, r.gflops(r.scalar_seconds),
                 r.gflops(r.simd_seconds), r.speedup(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbofno::bench;
  const Options opt = Options::parse(argc, argv);
  const std::size_t reps = opt.reps < 5 ? 5 : opt.reps;
  // Single worker: this bench compares kernel codegen, not thread counts.
  turbofno::runtime::set_thread_count(1);

  std::printf("== SIMD backend shoot-out (active backend: %s) ==\n\n",
              turbofno::simd::active_backend());
#if !TURBOFNO_SIMD_HAVE_AVX2
  std::printf("note: built scalar-only (TURBOFNO_SIMD=scalar or no AVX2); the\n"
              "      'simd' column below runs the scalar backend too.\n\n");
#endif

  std::vector<KernelResult> rows;
  rows.push_back(bench_cgemm_micro(reps));
  rows.push_back(bench_cgemm_full(reps));
  rows.push_back(bench_fft_dif_block(reps));
  rows.push_back(bench_fft_radix4_pass(reps));

  std::printf("%-24s %12s %12s %10s %10s %8s\n", "kernel", "scalar(us)", "simd(us)",
              "sc GF/s", "simd GF/s", "speedup");
  for (const auto& r : rows) {
    std::printf("%-24s %12.2f %12.2f %10.2f %10.2f %7.2fx\n", r.name.c_str(),
                r.scalar_seconds * 1e6, r.simd_seconds * 1e6, r.gflops(r.scalar_seconds),
                r.gflops(r.simd_seconds), r.speedup());
  }
  std::printf("\n(speedup = scalar backend / active backend wall-clock, best of %zu)\n",
              reps);

  if (!opt.json.empty()) write_json(opt.json, rows);
  return 0;
}
