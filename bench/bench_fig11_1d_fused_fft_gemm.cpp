// Figure 11: fused forward FFT + CGEMM (method B) vs PyTorch and method A.
#include "sweep1d.hpp"

int main(int argc, char** argv) {
  using namespace turbofno::bench;
  using turbofno::fused::Variant;
  const Options opt = Options::parse(argc, argv);
  std::printf("== Fig 11: 1D fused FFT-CGEMM (B) ==\n\n");
  run_1d_figure(11, "Fused_FFT_GEMM+iFFT", opt,
                {Variant::PyTorch, Variant::FftOpt, Variant::FusedFftGemm});
  return 0;
}
