// Figure 16: 2D fused FFT-CGEMM.
#include "sweep2d.hpp"

int main(int argc, char** argv) {
  using namespace turbofno::bench;
  using turbofno::fused::Variant;
  const Options opt = Options::parse(argc, argv);
  std::printf("== Fig 16: 2D fused FFT-CGEMM (B) ==\n\n");
  run_2d_figure(16, "Fused_FFT_GEMM+iFFT", opt,
                {Variant::PyTorch, Variant::FftOpt, Variant::FusedFftGemm});
  return 0;
}
