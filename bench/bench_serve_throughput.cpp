// Serving-layer throughput: dynamic micro-batching vs one-request-at-a-time.
//
// For each model shape, a fixed stream of single-field inference requests is
// pushed through three execution modes:
//   serial      direct core::Fno forward per request, no server (capacity 1)
//   serve-1     InferenceServer with max_batch = 1 (one-at-a-time serving)
//   serve-B     InferenceServer with max_batch = B for B in {2, 4, 8, 16}
// and the requests/second of each mode is reported.  Batching amortizes the
// per-forward fixed costs (stage dispatch, workspace setup, plan lookups,
// pool handoffs) across the micro-batch; the win is largest for the small
// requests a high-traffic service actually sees.
//
// A QoS axis rides along: for each shape, a 25/75 high/normal priority mix
// is pushed through the two-level queue (blocked behind enough load that
// ordering matters) and the per-class latency percentiles are reported —
// the win of priority scheduling is a lower high-class p95 at equal
// throughput.
//
// A loopback-socket axis prices the wire: the same request stream is pushed
// through net::SocketServer over 127.0.0.1 (framed protocol, CRC, epoll,
// pipelined client) and its req/s is compared against the in-process
// serve-8 mode — the gap is the full cost of the network front-end.
//
// A sharded-router axis prices the extra hop: the stream goes through a
// shard::Router fronting two in-process shard::Workers (one replica of the
// shape's model each, requests alternating between them), and its req/s is
// compared against the direct single-process socket — the gap is the
// router's frame relay + correlation remap.
//
//   bench_serve_throughput [--full] [--reps N] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "core/workload.hpp"
#include "runtime/timer.hpp"
#include "trace/table.hpp"

namespace {

using namespace turbofno;
using turbofno::bench::Options;

struct ShapeCase {
  std::string label;
  bool is_2d = false;
  core::Fno1dConfig c1;
  core::Fno2dConfig c2;
};

struct ModeResult {
  std::size_t max_batch = 0;  // 0 = direct serial
  double rps = 0.0;
  double avg_micro_batch = 1.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

/// One priority class's latency profile in the QoS mix run.
struct QosResult {
  serve::Priority priority = serve::Priority::Normal;
  std::size_t requests = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

struct QosMix {
  double rps = 0.0;  // whole-mix throughput
  std::uint64_t promotions = 0;
  QosResult cls[2];  // [0] high, [1] normal
};

/// The same stream over a loopback TCP socket (framed wire protocol).
struct SocketResult {
  double rps = 0.0;
  double p50_ms = 0.0;       // server-side total (queue + exec), from the wire
  double p95_ms = 0.0;
  double avg_micro_batch = 1.0;
};

/// The same stream through the shard router fronting two workers.
struct ShardedResult {
  double rps = 0.0;
  double p50_ms = 0.0;       // server-side total at the owning worker
  double p95_ms = 0.0;
};

std::vector<ShapeCase> shapes(bool full) {
  std::vector<ShapeCase> out;
  {
    ShapeCase s;
    s.label = "1d n=64 K=8 m=16 L=1";
    s.c1 = {1, 8, 1, 64, 16, 1};
    out.push_back(s);
  }
  {
    ShapeCase s;
    s.label = "1d n=256 K=16 m=64 L=2";
    s.c1 = {1, 16, 1, 256, 64, 2};
    out.push_back(s);
  }
  {
    ShapeCase s;
    s.label = "2d 16x16 K=8 m=4x4 L=1";
    s.is_2d = true;
    s.c2 = {1, 8, 1, 16, 16, 4, 4, 1};
    out.push_back(s);
  }
  if (full) {
    ShapeCase s;
    s.label = "2d 64x64 K=16 m=16x16 L=2";
    s.is_2d = true;
    s.c2 = {1, 16, 1, 64, 64, 16, 16, 2};
    out.push_back(s);
  }
  return out;
}

std::vector<std::vector<c32>> make_requests(const ShapeCase& s, std::size_t count) {
  const std::size_t elems = s.is_2d ? s.c2.in_channels * s.c2.nx * s.c2.ny
                                    : s.c1.in_channels * s.c1.n;
  std::vector<std::vector<c32>> reqs(count);
  for (std::size_t i = 0; i < count; ++i) {
    reqs[i].resize(elems);
    core::fill_random(reqs[i], 0x5e21u + static_cast<unsigned>(i));
  }
  return reqs;
}

ModeResult run_serial(const ShapeCase& s, const std::vector<std::vector<c32>>& reqs,
                      std::size_t reps) {
  ModeResult r;
  std::unique_ptr<core::Fno1d> m1;
  std::unique_ptr<core::Fno2d> m2;
  std::size_t out_elems = 0;
  if (s.is_2d) {
    m2 = std::make_unique<core::Fno2d>(s.c2);
    out_elems = s.c2.out_channels * s.c2.nx * s.c2.ny;
  } else {
    m1 = std::make_unique<core::Fno1d>(s.c1);
    out_elems = s.c1.out_channels * s.c1.n;
  }
  std::vector<c32> out(out_elems);
  const double secs = runtime::time_best_of(reps, [&] {
    for (const auto& req : reqs) {
      if (s.is_2d) {
        m2->forward(req, out);
      } else {
        m1->forward(req, out);
      }
    }
  });
  r.rps = static_cast<double>(reqs.size()) / secs;
  return r;
}

ModeResult run_served(const ShapeCase& s, const std::vector<std::vector<c32>>& reqs,
                      std::size_t max_batch, std::size_t reps) {
  serve::InferenceServer::Options so;
  so.policy.max_batch = max_batch;
  so.policy.max_delay_s = 200e-6;
  so.policy.queue_capacity = reqs.size();
  so.workers = 1;
  serve::InferenceServer server(so);
  const serve::ModelId model = s.is_2d ? server.load_model(s.c2) : server.load_model(s.c1);

  std::vector<std::future<serve::InferResponse>> futs;
  std::vector<double> totals;
  const double secs = runtime::time_best_of(reps, [&] {
    futs.clear();
    futs.reserve(reqs.size());
    for (const auto& req : reqs) futs.push_back(server.submit(model, req));
    server.drain();
  });
  totals.reserve(futs.size());
  for (auto& f : futs) {
    auto resp = f.get();
    totals.push_back(resp.timing.total_s);
  }
  std::sort(totals.begin(), totals.end());

  ModeResult r;
  r.max_batch = max_batch;
  r.rps = static_cast<double>(reqs.size()) / secs;
  r.avg_micro_batch = server.stats().avg_micro_batch();
  if (!totals.empty()) {
    r.p50_ms = totals[totals.size() / 2] * 1e3;
    r.p95_ms = totals[(totals.size() * 95) / 100] * 1e3;
  }
  return r;
}

QosMix run_qos(const ShapeCase& s, const std::vector<std::vector<c32>>& reqs,
               std::size_t reps) {
  serve::InferenceServer::Options so;
  so.policy.max_batch = 8;
  so.policy.max_delay_s = 200e-6;
  so.policy.queue_capacity = reqs.size();
  // The whole stream is one saturated burst, so every queued request ages
  // past any realistic starvation bound before the backlog drains.  Park
  // the guard above the drain time so this axis measures pure two-level
  // priority; the guard's own behavior is covered by tests/serve_test.cpp.
  so.policy.starvation_s = 10.0;
  so.workers = 1;
  serve::InferenceServer server(so);
  const serve::ModelId model = s.is_2d ? server.load_model(s.c2) : server.load_model(s.c1);

  // 1 high for every 3 normal requests, interleaved.
  std::vector<std::future<serve::InferResponse>> futs;
  const double secs = runtime::time_best_of(reps, [&] {
    futs.clear();
    futs.reserve(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const serve::SubmitOptions opts{i % 4 == 0 ? serve::Priority::High
                                                 : serve::Priority::Normal};
      futs.push_back(server.submit(model, reqs[i], opts));
    }
    server.drain();
  });

  QosMix mix;
  mix.rps = static_cast<double>(reqs.size()) / secs;
  mix.promotions = server.stats().starvation_promotions;
  std::vector<double> totals[2];
  for (auto& f : futs) {
    const auto resp = f.get();
    totals[resp.priority == serve::Priority::High ? 0 : 1].push_back(resp.timing.total_s);
  }
  for (int c = 0; c < 2; ++c) {
    auto& t = totals[c];
    std::sort(t.begin(), t.end());
    mix.cls[c].priority = c == 0 ? serve::Priority::High : serve::Priority::Normal;
    mix.cls[c].requests = t.size();
    if (!t.empty()) {
      mix.cls[c].p50_ms = t[t.size() / 2] * 1e3;
      mix.cls[c].p95_ms = t[(t.size() * 95) / 100] * 1e3;
    }
  }
  return mix;
}

SocketResult run_socket(const ShapeCase& s, const std::vector<std::vector<c32>>& reqs,
                        std::size_t reps) {
  net::SocketServer::Options so;
  so.port = 0;  // ephemeral: the bench must not collide with a real server
  so.serve.policy.max_batch = 8;
  so.serve.policy.max_delay_s = 200e-6;
  so.serve.policy.queue_capacity = reqs.size();
  so.serve.workers = 1;
  net::SocketServer srv(so);
  const serve::ModelId model = s.is_2d ? srv.load_model(s.c2) : srv.load_model(s.c1);
  srv.start();

  std::vector<std::uint32_t> dims;
  if (s.is_2d) {
    dims = {static_cast<std::uint32_t>(s.c2.in_channels), static_cast<std::uint32_t>(s.c2.nx),
            static_cast<std::uint32_t>(s.c2.ny)};
  } else {
    dims = {static_cast<std::uint32_t>(s.c1.in_channels), static_cast<std::uint32_t>(s.c1.n)};
  }

  net::Client cli;
  cli.connect(srv.bound_port());  // ephemeral bind: never collides across runs

  // Pipelined client: keep a bounded window in flight so the stream stays
  // busy without tripping the server's per-connection write backpressure.
  const std::size_t window = 16;
  std::vector<double> totals;
  net::Client::Result resp;
  const double secs = runtime::time_best_of(reps, [&] {
    totals.clear();
    std::size_t sent = 0, received = 0;
    while (received < reqs.size()) {
      while (sent < reqs.size() && sent - received < window) {
        cli.send_request(static_cast<std::uint32_t>(model), net::Dtype::C32, dims,
                         std::as_bytes(std::span<const c32>(reqs[sent])));
        ++sent;
      }
      if (!cli.recv_response(resp)) break;
      totals.push_back(resp.head.total_us * 1e-6);
      ++received;
    }
  });

  SocketResult r;
  r.rps = static_cast<double>(reqs.size()) / secs;
  r.avg_micro_batch = srv.server()->stats().avg_micro_batch();
  std::sort(totals.begin(), totals.end());
  if (!totals.empty()) {
    r.p50_ms = totals[totals.size() / 2] * 1e3;
    r.p95_ms = totals[(totals.size() * 95) / 100] * 1e3;
  }
  cli.close();
  srv.stop();
  return r;
}

ShardedResult run_sharded(const ShapeCase& s, const std::vector<std::vector<c32>>& reqs,
                          std::size_t reps) {
  // Two replicas of the shape's model, one per worker; requests alternate
  // between global ids 0 and 1 so both shards (and the router's id remap
  // on both paths) stay on the measured path.
  shard::Topology topo;
  if (s.is_2d) {
    topo.add(s.c2, 0);
    topo.add(s.c2, 1);
  } else {
    topo.add(s.c1, 0);
    topo.add(s.c1, 1);
  }

  shard::Worker::Options wo;
  wo.serve.policy.max_batch = 8;
  wo.serve.policy.max_delay_s = 200e-6;
  wo.serve.policy.queue_capacity = reqs.size();
  wo.serve.workers = 1;
  shard::Worker w0(topo, 0, wo);
  shard::Worker w1(topo, 1, wo);
  w0.start();
  w1.start();

  shard::Router router(topo);
  router.set_worker_endpoint(0, w0.port());
  router.set_worker_endpoint(1, w1.port());
  router.start();

  std::vector<std::uint32_t> dims;
  if (s.is_2d) {
    dims = {static_cast<std::uint32_t>(s.c2.in_channels), static_cast<std::uint32_t>(s.c2.nx),
            static_cast<std::uint32_t>(s.c2.ny)};
  } else {
    dims = {static_cast<std::uint32_t>(s.c1.in_channels), static_cast<std::uint32_t>(s.c1.n)};
  }

  net::Client cli;
  cli.connect(router.bound_port());

  const std::size_t window = 16;
  std::vector<double> totals;
  net::Client::Result resp;
  const double secs = runtime::time_best_of(reps, [&] {
    totals.clear();
    std::size_t sent = 0, received = 0;
    while (received < reqs.size()) {
      while (sent < reqs.size() && sent - received < window) {
        cli.send_request(static_cast<std::uint32_t>(sent % 2), net::Dtype::C32, dims,
                         std::as_bytes(std::span<const c32>(reqs[sent])));
        ++sent;
      }
      if (!cli.recv_response(resp)) break;
      totals.push_back(resp.head.total_us * 1e-6);
      ++received;
    }
  });

  ShardedResult r;
  r.rps = static_cast<double>(reqs.size()) / secs;
  std::sort(totals.begin(), totals.end());
  if (!totals.empty()) {
    r.p50_ms = totals[totals.size() / 2] * 1e3;
    r.p95_ms = totals[(totals.size() * 95) / 100] * 1e3;
  }
  cli.close();
  router.stop();
  w0.stop();
  w1.stop();
  return r;
}

void write_json(const std::string& path, std::size_t requests,
                const std::vector<std::pair<ShapeCase, std::vector<ModeResult>>>& results,
                const std::vector<QosMix>& qos, const std::vector<SocketResult>& socket,
                const std::vector<ShardedResult>& sharded) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve_throughput: cannot open --json path '%s'\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"requests\": %zu,\n  \"shapes\": [\n", requests);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& [shape, modes] = results[i];
    std::fprintf(f, "    {\"shape\": \"%s\", \"modes\": [\n", shape.label.c_str());
    const double serial_rps = modes.front().rps;
    const double one_at_a_time_rps = modes.size() > 1 ? modes[1].rps : serial_rps;
    for (std::size_t j = 0; j < modes.size(); ++j) {
      const auto& m = modes[j];
      std::fprintf(f,
                   "      {\"mode\": \"%s\", \"max_batch\": %zu, \"rps\": %.1f, "
                   "\"speedup_vs_serial\": %.3f, \"speedup_vs_serve1\": %.3f, "
                   "\"avg_micro_batch\": %.2f, \"p50_ms\": %.4f, \"p95_ms\": %.4f}%s\n",
                   j == 0 ? "serial" : "serve", m.max_batch, m.rps, m.rps / serial_rps,
                   m.rps / one_at_a_time_rps, m.avg_micro_batch, m.p50_ms, m.p95_ms,
                   j + 1 < modes.size() ? "," : "");
    }
    const auto& q = qos[i];
    std::fprintf(f, "    ], \"qos_mix_25_75\": {\"rps\": %.1f, \"promotions\": %llu, "
                    "\"classes\": [\n",
                 q.rps, static_cast<unsigned long long>(q.promotions));
    for (int c = 0; c < 2; ++c) {
      std::fprintf(f,
                   "      {\"priority\": \"%s\", \"requests\": %zu, "
                   "\"p50_ms\": %.4f, \"p95_ms\": %.4f}%s\n",
                   serve::priority_name(q.cls[c].priority).data(), q.cls[c].requests,
                   q.cls[c].p50_ms, q.cls[c].p95_ms, c == 0 ? "," : "");
    }
    // serve-8 is modes[4]: serial + serve-{1,2,4,8,...}.
    const double serve8_rps = modes.size() > 4 ? modes[4].rps : modes.back().rps;
    const auto& sk = socket[i];
    std::fprintf(f,
                 "    ]},\n    \"socket_loopback\": {\"mode\": \"socket\", \"max_batch\": 8, "
                 "\"rps\": %.1f, \"relative_to_serve8\": %.3f, \"avg_micro_batch\": %.2f, "
                 "\"p50_ms\": %.4f, \"p95_ms\": %.4f},\n",
                 sk.rps, sk.rps / serve8_rps, sk.avg_micro_batch, sk.p50_ms, sk.p95_ms);
    const auto& sh = sharded[i];
    std::fprintf(f,
                 "    \"sharded_router\": {\"mode\": \"sharded_router\", \"workers\": 2, "
                 "\"max_batch\": 8, \"rps\": %.1f, \"relative_to_socket\": %.3f, "
                 "\"p50_ms\": %.4f, \"p95_ms\": %.4f}}%s\n",
                 sh.rps, sk.rps > 0.0 ? sh.rps / sk.rps : 0.0, sh.p50_ms, sh.p95_ms,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  const std::size_t requests = opt.full ? 512 : 128;
  const std::vector<std::size_t> batches = {1, 2, 4, 8, 16};

  std::printf("== Serving throughput: micro-batched vs one-request-at-a-time ==\n");
  std::printf("(%zu requests per point, best of %zu passes, 1 executor worker)\n\n", requests,
              opt.reps);

  std::vector<std::pair<ShapeCase, std::vector<ModeResult>>> results;
  std::vector<QosMix> qos;
  std::vector<SocketResult> socket;
  std::vector<ShardedResult> sharded;
  for (const auto& s : shapes(opt.full)) {
    const auto reqs = make_requests(s, requests);
    std::vector<ModeResult> modes;
    modes.push_back(run_serial(s, reqs, opt.reps));
    for (const auto b : batches) modes.push_back(run_served(s, reqs, b, opt.reps));
    qos.push_back(run_qos(s, reqs, opt.reps));
    socket.push_back(run_socket(s, reqs, opt.reps));
    sharded.push_back(run_sharded(s, reqs, opt.reps));

    trace::TextTable table({"mode", "req/s", "vs serial", "vs serve-1", "avg batch", "p50 ms",
                            "p95 ms"});
    const double serial_rps = modes[0].rps;
    const double serve1_rps = modes[1].rps;
    for (std::size_t j = 0; j < modes.size(); ++j) {
      const auto& m = modes[j];
      const std::string name = j == 0 ? "serial" : "serve-" + std::to_string(m.max_batch);
      table.add_row({name, trace::TextTable::fmt(m.rps, 0),
                     trace::TextTable::fmt(m.rps / serial_rps, 2),
                     trace::TextTable::fmt(m.rps / serve1_rps, 2),
                     j == 0 ? "-" : trace::TextTable::fmt(m.avg_micro_batch, 2),
                     j == 0 ? "-" : trace::TextTable::fmt(m.p50_ms, 3),
                     j == 0 ? "-" : trace::TextTable::fmt(m.p95_ms, 3)});
    }
    std::printf("%s\n%s\n", s.label.c_str(), table.str().c_str());
    const auto& q = qos.back();
    std::printf("  qos mix 25%% high / 75%% normal @ max_batch=8: %.0f req/s, "
                "high p95 %.3f ms vs normal p95 %.3f ms (%llu promotions)\n",
                q.rps, q.cls[0].p95_ms, q.cls[1].p95_ms,
                static_cast<unsigned long long>(q.promotions));
    const auto& sk = socket.back();
    const double serve8_rps = modes.size() > 4 ? modes[4].rps : modes.back().rps;
    std::printf("  loopback socket @ max_batch=8: %.0f req/s (%.2fx of in-process serve-8), "
                "server-side p95 %.3f ms, avg batch %.2f\n",
                sk.rps, sk.rps / serve8_rps, sk.p95_ms, sk.avg_micro_batch);
    const auto& sh = sharded.back();
    std::printf("  sharded router, 2 workers @ max_batch=8: %.0f req/s (%.2fx of direct "
                "socket), server-side p95 %.3f ms\n\n",
                sh.rps, sk.rps > 0.0 ? sh.rps / sk.rps : 0.0, sh.p95_ms);
    results.emplace_back(s, std::move(modes));
  }

  write_json(opt.json, requests, results, qos, socket, sharded);
  return 0;
}
