// Ablation: SM occupancy / wave quantization of the fused kernel — the
// mechanism behind the Fig 14/19 "blue corner" (slowdowns at small batch
// with large hidden dim).  Pure model, no timing.
#include <cstdio>

#include "bench_common.hpp"
#include "gpusim/occupancy.hpp"
#include "trace/table.hpp"

int main(int argc, char** argv) {
  using namespace turbofno;
  using namespace turbofno::gpusim;
  (void)bench::Options::parse(argc, argv);

  std::printf("== Ablation: fused-kernel SM occupancy on the A100 model ==\n\n");

  const SmLimits sm;
  {
    trace::TextTable t({"modes", "fft n", "smem/block", "blocks/SM", "occupancy", "limiter"});
    for (const std::size_t modes : {std::size_t{64}, std::size_t{128}}) {
      for (const std::size_t n : {std::size_t{128}, std::size_t{256}}) {
        const auto block = fused_kernel_block(modes, n);
        const auto o = occupancy_of(sm, block);
        t.add_row({std::to_string(modes), std::to_string(n),
                   std::to_string(block.shared_memory_bytes / 1024) + " KiB",
                   std::to_string(o.blocks_per_sm),
                   trace::TextTable::fmt(100.0 * o.occupancy, 1) + "%", o.limiter});
      }
    }
    std::printf("static occupancy of the fused FFT-CGEMM-iFFT block:\n%s\n", t.str().c_str());
  }

  {
    trace::TextTable t({"batch", "grid blocks", "wave efficiency"});
    const auto block = fused_kernel_block(64, 128);
    for (const std::size_t batch : {1u, 4u, 16u, 64u, 256u, 1024u, 4096u, 16384u}) {
      const std::size_t grid = fused_grid_1d(batch, 128);
      t.add_row({std::to_string(batch), std::to_string(grid),
                 trace::TextTable::fmt(100.0 * wave_efficiency(sm, block, grid), 1) + "%"});
    }
    std::printf("wave efficiency vs batch (out_dim = 128, the Fig 14 corner):\n%s", t.str().c_str());
    std::printf("\nSmall batches cannot fill %zu SMs x blocks/SM -> the heatmaps' blue\n"
                "lower-left corner; growth restores full waves.\n",
                sm.sm_count);
  }
  return 0;
}
