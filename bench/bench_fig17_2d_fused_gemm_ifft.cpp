// Figure 17: 2D fused CGEMM-iFFT.
#include "sweep2d.hpp"

int main(int argc, char** argv) {
  using namespace turbofno::bench;
  using turbofno::fused::Variant;
  const Options opt = Options::parse(argc, argv);
  std::printf("== Fig 17: 2D fused CGEMM-iFFT (C) ==\n\n");
  run_2d_figure(17, "FFT+Fused_GEMM_iFFT", opt,
                {Variant::PyTorch, Variant::FftOpt, Variant::FusedFftGemm,
                 Variant::FusedGemmIfft});
  return 0;
}
