// Shared sweep definitions for the 2D evaluation figures (paper Figs 15-18).
//
// Axes mirror the paper: subplot (a) sweeps the hidden dimension K at a
// fixed batch size; (b)-(d) sweep the batch size at K = 32 / 64 / 128.
// Fields are DimX x DimY = 256 x 128 (the paper's primary 2D shape) with
// truncation to 64x64 modes.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace turbofno::bench {

inline baseline::Spectral2dProblem make_2d(std::size_t batch, std::size_t k, std::size_t nx,
                                           std::size_t ny, std::size_t mx, std::size_t my) {
  baseline::Spectral2dProblem p;
  p.batch = batch;
  p.hidden = k;
  p.out_dim = k;
  p.nx = nx;
  p.ny = ny;
  p.modes_x = mx;
  p.modes_y = my;
  return p;
}

inline void run_2d_figure(int fig, const char* what, const Options& opt,
                          const std::vector<fused::Variant>& variants) {
  const std::size_t nx = 256;
  const std::size_t ny = 128;
  const std::size_t mx = 64;
  const std::size_t my = 64;

  // (a) sweep K at fixed batch size.
  const std::size_t bs_fixed = opt.full ? 8 : 4;
  const std::vector<std::size_t> ks =
      opt.full ? std::vector<std::size_t>{16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96,
                                          104, 112, 120, 128, 136}
               : std::vector<std::size_t>{16, 32, 64, 128};
  std::vector<PointResult> sweep_k;
  for (const auto k : ks) {
    auto pr = run_point_2d(make_2d(bs_fixed, k, nx, ny, mx, my), variants, opt.reps);
    pr.label = "K=" + std::to_string(k);
    sweep_k.push_back(std::move(pr));
  }
  char title[160];
  std::snprintf(title, sizeof title,
                "Figure %d(a): %s — sweep K, BS=%zu, %zux%zu field, modes %zux%zu", fig, what,
                bs_fixed, nx, ny, mx, my);
  print_figure_table(title, sweep_k);

  // (b)-(d) sweep batch size at fixed K.
  const std::vector<std::size_t> bss = opt.full
                                           ? std::vector<std::size_t>{48, 64, 80, 96, 112, 128}
                                           : std::vector<std::size_t>{4, 8, 16};
  int sub = 'b';
  for (const std::size_t k : {std::size_t{32}, std::size_t{64}, std::size_t{128}}) {
    std::vector<PointResult> sweep_bs;
    for (const auto bs : bss) {
      auto pr = run_point_2d(make_2d(bs, k, nx, ny, mx, my), variants, opt.reps);
      pr.label = "BS=" + std::to_string(bs);
      sweep_bs.push_back(std::move(pr));
    }
    std::snprintf(title, sizeof title, "Figure %d(%c): %s — sweep BS, K=%zu", fig, sub, what, k);
    print_figure_table(title, sweep_bs);
    print_summary(sweep_bs, sweep_bs[0].variants.size() - 1);
    ++sub;
  }
  print_summary(sweep_k, sweep_k[0].variants.size() - 1);
}

}  // namespace turbofno::bench
