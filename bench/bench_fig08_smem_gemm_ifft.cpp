// Figure 8: shared-memory bank utilization of the CGEMM -> iFFT epilogue
// store, with and without the tid/4 swizzle.
#include <cstdio>

#include "bench_common.hpp"
#include "gpusim/layouts.hpp"
#include "trace/table.hpp"

int main(int argc, char** argv) {
  using namespace turbofno;
  using namespace turbofno::gpusim;
  (void)bench::Options::parse(argc, argv);

  std::printf("== Fig 8: CGEMM->iFFT epilogue store (bank simulator) ==\n\n");
  trace::TextTable t({"layout", "utilization", "cycles/instr", "paper says"});
  for (const bool swizzle : {false, true}) {
    const auto pattern = fig8_gemm_epilogue_store(swizzle);
    const auto audit = replay(pattern);
    t.add_row({swizzle ? "(b) offset += tid/4" : "(a) no offset",
               trace::TextTable::fmt(100.0 * audit.utilization(), 2) + "%",
               trace::TextTable::fmt(audit.mean_cycles(), 2), swizzle ? "100%" : "25%"});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\nWarp tile 32x16 complex, each thread storing a 4x4 register block; the\n"
              "swizzle staggers column groups so 64 word-accesses land on all 32 banks\n"
              "in the 2-cycle floor.\n");
  return 0;
}
