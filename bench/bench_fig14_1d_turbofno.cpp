// Figure 14: 1D TurboFNO (best of all optimizations) vs PyTorch, rendered
// as the paper's heatmaps over (K, log2 M) for 128/256-pt FFTs with
// truncation to 64/128 modes.  Also prints Table 2's method mapping.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sweep1d.hpp"
#include "trace/table.hpp"

namespace {

using namespace turbofno::bench;
using turbofno::fused::Variant;

void heatmap(const Options& opt, std::size_t n, std::size_t modes) {
  const std::vector<std::size_t> ks = opt.full
                                          ? std::vector<std::size_t>{8, 24, 40, 56, 72, 88, 104, 120}
                                          : std::vector<std::size_t>{8, 40, 72, 120};
  const std::vector<std::size_t> log_ms = opt.full
                                              ? std::vector<std::size_t>{8, 10, 12, 14, 16, 18, 20}
                                              : std::vector<std::size_t>{10, 13, 16};

  std::vector<std::string> row_labels;
  for (const auto lm : log_ms) row_labels.push_back("2^" + std::to_string(lm));
  std::vector<std::string> col_labels;
  for (const auto k : ks) col_labels.push_back(std::to_string(k));
  turbofno::trace::AsciiHeatmap heat(row_labels, col_labels);
  turbofno::trace::AsciiHeatmap heat_model(row_labels, col_labels);

  double sum = 0.0;
  double best = -1e9;
  std::size_t count = 0;
  for (std::size_t r = 0; r < log_ms.size(); ++r) {
    for (std::size_t c = 0; c < ks.size(); ++c) {
      const auto prob = make_1d(std::size_t{1} << log_ms[r], ks[c], n, modes);
      const auto pr = run_point_1d(
          prob, {Variant::PyTorch, Variant::FftOpt, Variant::FusedFftGemm,
                 Variant::FusedGemmIfft, Variant::FullyFused},
          opt.reps);
      // Best-of TurboFNO strategies, as the paper's Fig 14 does.
      double best_pct = -1e9;
      double best_model = -1e9;
      for (std::size_t i = 1; i < pr.variants.size(); ++i) {
        best_pct = std::max(best_pct, pr.perf_vs_base(i) - 100.0);
        best_model = std::max(best_model, pr.model_perf_vs_base(i) - 100.0);
      }
      heat.set(r, c, best_pct);
      heat_model.set(r, c, best_model);
      sum += best_pct;
      best = std::max(best, best_pct);
      ++count;
    }
  }
  std::printf("Figure 14 heatmap: %zu-pt FFT, N(modes)=%zu — measured speedup vs PyTorch\n",
              n, modes);
  std::printf("(rows: M = batch x modes; cols: hidden dim K)\n%s\n", heat.str().c_str());
  std::printf("Same grid, A100 cost-model prediction:\n%s\n", heat_model.str().c_str());
  std::printf("grid summary: average %+.1f%%, max %+.1f%% vs PyTorch\n\n",
              sum / static_cast<double>(count), best);
}

// Real-input (RFFT) lane vs the complex lane on spectral-dominated shapes:
// the half-spectrum schedule moves ~half the bytes through every stage, so
// the real rows should land well above 100%.  Recorded as its own --json
// figure with spectral_path-tagged variant rows.
void real_vs_complex(const Options& opt) {
  struct Shape {
    std::size_t m, k, n, modes;
  };
  const std::vector<Shape> shapes = opt.full
                                        ? std::vector<Shape>{{1u << 14, 32, 128, 64},
                                                             {1u << 16, 32, 128, 64},
                                                             {1u << 16, 64, 128, 64},
                                                             {1u << 16, 32, 256, 128},
                                                             {1u << 18, 64, 256, 128}}
                                        : std::vector<Shape>{{1u << 14, 32, 128, 64},
                                                             {1u << 16, 32, 128, 64},
                                                             {1u << 16, 32, 256, 128}};
  std::vector<PointResult> points;
  for (const auto& s : shapes) {
    auto pr = run_point_1d_real(make_1d(s.m, s.k, s.n, s.modes), Variant::FullyFused, opt.reps);
    pr.label = "M=" + std::to_string(s.m) + ",K=" + std::to_string(s.k) + ",n=" +
               std::to_string(s.n);
    points.push_back(std::move(pr));
  }
  print_figure_table("Figure 14 real-vs-complex: RFFT lane vs C2C lane (1D fully fused)", points);
  print_summary(points, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  std::printf("== Fig 14: 1D TurboFNO (all optimizations, best-of) vs PyTorch ==\n\n");
  std::printf("Table 2 method mapping:\n");
  std::printf("  A = FFT pruning/truncation/zero-padding (Fig 10)\n");
  std::printf("  B = fused FFT-CGEMM                      (Fig 11)\n");
  std::printf("  C = fused CGEMM-iFFT                     (Fig 12)\n");
  std::printf("  D = fused FFT-CGEMM-iFFT                 (Fig 13)\n");
  std::printf("  E = TurboFNO best-of A+B+C+D             (this figure)\n\n");

  heatmap(opt, 128, 64);
  if (opt.full) {
    heatmap(opt, 128, 128);
    heatmap(opt, 256, 64);
    heatmap(opt, 256, 128);
  } else {
    heatmap(opt, 256, 64);
  }
  real_vs_complex(opt);
  return 0;
}
