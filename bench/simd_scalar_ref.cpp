// Scalar reference kernels, compiled with AVX/FMA disabled (CMake appends
// -mno-avx -mno-avx2 -mno-fma to this file only).  Deliberately self-
// contained copies of the seed's loops rather than template instantiations:
// a template instantiated here and in an AVX2 TU would be COMDAT-merged at
// link time and could silently resolve to the AVX2-compiled copy.
#include "simd_scalar_ref.hpp"

#include <algorithm>
#include <cstring>

namespace turbofno::bench::scalar_ref {

namespace {

constexpr std::size_t kMt = 4;
constexpr std::size_t kNt = 4;

void pack_a(c32* Apack, const c32* A, std::size_t lda, std::size_t i0, std::size_t k0,
            std::size_t mi, std::size_t kc) {
  for (std::size_t k = 0; k < kKtb; ++k) {
    c32* dst = Apack + k * kMtb;
    if (k < kc) {
      const c32* src = A + i0 * lda + (k0 + k);
      std::size_t i = 0;
      for (; i < mi; ++i) dst[i] = src[i * lda];
      for (; i < kMtb; ++i) dst[i] = c32{};
    } else {
      std::memset(dst, 0, kMtb * sizeof(c32));
    }
  }
}

void pack_b(c32* Bpack, const c32* B, std::size_t ldb, std::size_t k0, std::size_t j0,
            std::size_t kc, std::size_t nj) {
  for (std::size_t k = 0; k < kKtb; ++k) {
    c32* dst = Bpack + k * kNtb;
    if (k < kc) {
      const c32* src = B + (k0 + k) * ldb + j0;
      std::memcpy(dst, src, nj * sizeof(c32));
      for (std::size_t j = nj; j < kNtb; ++j) dst[j] = c32{};
    } else {
      std::memset(dst, 0, kNtb * sizeof(c32));
    }
  }
}

void micro_accumulate(c32 (&acc)[kMt][kNt], const c32* Apack, const c32* Bpack, std::size_t kc,
                      std::size_t i0, std::size_t j0) {
  for (std::size_t k = 0; k < kc; ++k) {
    const c32* arow = Apack + k * kMtb + i0;
    const c32* brow = Bpack + k * kNtb + j0;
    for (std::size_t i = 0; i < kMt; ++i) {
      const c32 a = arow[i];
      for (std::size_t j = 0; j < kNt; ++j) {
        cmadd(acc[i][j], a, brow[j]);
      }
    }
  }
}

}  // namespace

void micro_cgemm_pass(c32* acc_tile, const c32* Apack, const c32* Bpack, std::size_t kc) {
  for (std::size_t ii = 0; ii < kMtb; ii += kMt) {
    for (std::size_t jj = 0; jj < kNtb; jj += kNt) {
      c32 acc[kMt][kNt];
      for (std::size_t i = 0; i < kMt; ++i)
        for (std::size_t j = 0; j < kNt; ++j) acc[i][j] = acc_tile[(ii + i) * kNtb + (jj + j)];
      micro_accumulate(acc, Apack, Bpack, kc, ii, jj);
      for (std::size_t i = 0; i < kMt; ++i)
        for (std::size_t j = 0; j < kNt; ++j) acc_tile[(ii + i) * kNtb + (jj + j)] = acc[i][j];
    }
  }
}

void cgemm_fused_tiles(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A,
                       std::size_t lda, const c32* B, std::size_t ldb, c32 beta, c32* C,
                       std::size_t ldc) {
  alignas(64) c32 Apack[kMtb * kKtb];
  alignas(64) c32 Bpack[kNtb * kKtb];
  const std::size_t tiles_m = (M + kMtb - 1) / kMtb;
  const std::size_t tiles_n = (N + kNtb - 1) / kNtb;
  for (std::size_t ti = 0; ti < tiles_m; ++ti) {
    for (std::size_t tj = 0; tj < tiles_n; ++tj) {
      const std::size_t i0 = ti * kMtb;
      const std::size_t j0 = tj * kNtb;
      const std::size_t mi = std::min(kMtb, M - i0);
      const std::size_t nj = std::min(kNtb, N - j0);

      c32 acc_tile[kMtb * kNtb];
      std::fill(acc_tile, acc_tile + kMtb * kNtb, c32{});

      for (std::size_t k0 = 0; k0 < K; k0 += kKtb) {
        const std::size_t kc = std::min(kKtb, K - k0);
        pack_a(Apack, A, lda, i0, k0, mi, kc);
        pack_b(Bpack, B, ldb, k0, j0, kc, nj);
        micro_cgemm_pass(acc_tile, Apack, Bpack, kc);
      }

      for (std::size_t i = 0; i < mi; ++i) {
        c32* crow = C + (i0 + i) * ldc + j0;
        const c32* arow = acc_tile + i * kNtb;
        if (beta == c32{0.0f, 0.0f}) {
          for (std::size_t j = 0; j < nj; ++j) crow[j] = alpha * arow[j];
        } else {
          for (std::size_t j = 0; j < nj; ++j) crow[j] = alpha * arow[j] + beta * crow[j];
        }
      }
    }
  }
}

std::uint64_t dif_block_butterfly(c32* x, std::size_t half, std::size_t z, bool need_odd,
                                  std::span<const c32> w) {
  std::uint64_t ops = 0;
  const std::size_t full_end = z > half ? z - half : 0;
  const std::size_t copy_end = std::min(z, half);

  if (need_odd) {
    std::size_t j = 0;
    if (full_end > 0) {
      const c32 a = x[0];
      const c32 b = x[half];
      x[0] = a + b;
      x[half] = a - b;
      ops += 2;
      j = 1;
    }
    for (; j < full_end; ++j) {
      const c32 a = x[j];
      const c32 b = x[j + half];
      x[j] = a + b;
      x[j + half] = (a - b) * w[j];
      ops += 2;
    }
    for (j = full_end; j < copy_end; ++j) {
      x[j + half] = x[j] * w[j];
      ops += 1;
    }
  } else {
    for (std::size_t j = 0; j < full_end; ++j) {
      x[j] = x[j] + x[j + half];
      ops += 1;
    }
  }
  return ops;
}

void radix4_pass(const c32* src, c32* dst, std::size_t l, std::size_t s,
                 std::span<const c32> w) {
  const std::size_t half = 2 * l;
  auto tw_at = [&](std::size_t j) -> c32 { return j < half ? w[j] : -w[j - half]; };

  for (std::size_t p = 0; p < l; ++p) {
    const c32 w1 = tw_at(p);
    const c32 w2 = tw_at(2 * p);
    const c32 w3 = tw_at(3 * p);
    const c32* s0 = src + s * p;
    const c32* s1 = src + s * (p + l);
    const c32* s2 = src + s * (p + 2 * l);
    const c32* s3 = src + s * (p + 3 * l);
    c32* d0 = dst + s * 4 * p;
    c32* d1 = d0 + s;
    c32* d2 = d1 + s;
    c32* d3 = d2 + s;
    if (p == 0) {
      for (std::size_t q = 0; q < s; ++q) {
        const c32 a = s0[q];
        const c32 b = s1[q];
        const c32 c = s2[q];
        const c32 d = s3[q];
        const c32 t0 = a + c;
        const c32 t1 = a - c;
        const c32 t2 = b + d;
        const c32 t3 = mul_neg_i(b - d);
        d0[q] = t0 + t2;
        d1[q] = t1 + t3;
        d2[q] = t0 - t2;
        d3[q] = t1 - t3;
      }
      continue;
    }
    for (std::size_t q = 0; q < s; ++q) {
      const c32 a = s0[q];
      const c32 b = s1[q];
      const c32 c = s2[q];
      const c32 d = s3[q];
      const c32 t0 = a + c;
      const c32 t1 = a - c;
      const c32 t2 = b + d;
      const c32 t3 = mul_neg_i(b - d);
      d0[q] = t0 + t2;
      d1[q] = (t1 + t3) * w1;
      d2[q] = (t0 - t2) * w2;
      d3[q] = (t1 - t3) * w3;
    }
  }
}

}  // namespace turbofno::bench::scalar_ref
