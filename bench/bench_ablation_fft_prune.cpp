// Ablation: what each FFT feature buys — full FFT + truncate-copy (the
// baseline's plan), truncation without butterfly pruning, and the full
// truncation + pruning path.
#include <cstdio>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "fft/dif_pruned.hpp"
#include "fft/opcount.hpp"
#include "fft/plan.hpp"
#include "fft/stockham.hpp"
#include "runtime/parallel.hpp"
#include "runtime/timer.hpp"
#include "tensor/aligned_buffer.hpp"
#include "trace/table.hpp"

namespace {

using namespace turbofno;

// Truncation WITHOUT pruning: run the full butterfly network, then write
// only the kept bins (what a library could do if it merely fused the copy).
void full_fft_then_slice(std::span<const c32> in, std::span<c32> out, std::size_t batch,
                         std::size_t n, std::size_t keep) {
  runtime::parallel_for(0, batch, 8, [&](std::size_t lo, std::size_t hi) {
    AlignedBuffer<c32> work(2 * n);
    for (std::size_t b = lo; b < hi; ++b) {
      std::copy_n(in.data() + b * n, n, work.data());
      fft::stockham_forward({work.data(), n}, {work.data() + n, n}, n);
      std::copy_n(work.data(), keep, out.data() + b * keep);
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = turbofno::bench::Options::parse(argc, argv);
  std::printf("== Ablation: FFT truncation vs truncation+pruning ==\n\n");

  const std::size_t batch = opt.full ? (1u << 17) : (1u << 15);
  trace::TextTable t({"n", "keep", "full+slice ms", "trunc+pruned ms", "speedup",
                      "ops retained"});
  for (const std::size_t n : {128u, 256u, 1024u}) {
    for (const std::size_t div : {4u, 2u}) {
      const std::size_t keep = n / div;
      AlignedBuffer<c32> in(batch * n);
      AlignedBuffer<c32> out(batch * keep);
      core::fill_random(in.span(), 7u);

      const double t_slice = runtime::time_best_of(
          opt.reps, [&] { full_fft_then_slice(in.span(), out.span(), batch, n, keep); });

      fft::PlanDesc d;
      d.n = n;
      d.keep = keep;
      const fft::FftPlan plan(d);
      const double t_pruned =
          runtime::time_best_of(opt.reps, [&] { plan.execute(in.span(), out.span(), batch); });

      t.add_row({std::to_string(n), std::to_string(keep),
                 trace::TextTable::fmt(t_slice * 1e3, 2),
                 trace::TextTable::fmt(t_pruned * 1e3, 2),
                 trace::TextTable::fmt(t_slice / t_pruned, 2) + "x",
                 trace::TextTable::fmt(100.0 * fft::pruned_fraction(n, keep, n), 1) + "%"});
    }
  }
  std::printf("%s", t.str().c_str());
  std::printf("\n(batch = %zu signals; 'ops retained' is the pruned butterfly fraction)\n",
              batch);
  return 0;
}
