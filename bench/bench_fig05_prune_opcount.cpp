// Figure 5: FFT butterfly-pruning operation counts.  Reproduces the paper's
// 4-point example exactly (3 / 6 / 8 ops at 25% / 50% / no truncation) and
// extends the table to the kernel's real sizes.
#include <cstdio>

#include "bench_common.hpp"
#include "fft/opcount.hpp"
#include "trace/table.hpp"

int main(int argc, char** argv) {
  using namespace turbofno;
  using namespace turbofno::fft;
  (void)bench::Options::parse(argc, argv);

  std::printf("== Fig 5: FFT pruning op counts ==\n\n");

  std::printf("Paper's 4-point example:\n");
  trace::TextTable t4({"case", "ops", "of full", "paper"});
  t4.add_row({"(a) keep 1/4 (25%)", std::to_string(count_pruned_ops(4, 1, 4).unit_ops),
              trace::TextTable::fmt(100.0 * pruned_fraction(4, 1, 4), 1) + "%",
              "3 ops = 37.5%"});
  t4.add_row({"(b) keep 2/4 (50%)", std::to_string(count_pruned_ops(4, 2, 4).unit_ops),
              trace::TextTable::fmt(100.0 * pruned_fraction(4, 2, 4), 1) + "%",
              "6 ops = 75%"});
  t4.add_row({"(c) full", std::to_string(count_full_ops(4).unit_ops), "100.0%", "8 ops"});
  std::printf("%s\n", t4.str().c_str());

  std::printf("Truncated forward FFT (output pruning):\n");
  trace::TextTable tt({"n", "keep", "unit ops", "full ops", "retained", "flops", "full flops"});
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 1024u}) {
    for (std::size_t div : {4u, 2u}) {
      const std::size_t m = n / div;
      const auto oc = count_pruned_ops(n, m, n);
      const auto full = count_full_ops(n);
      tt.add_row({std::to_string(n), std::to_string(m), std::to_string(oc.unit_ops),
                  std::to_string(full.unit_ops),
                  trace::TextTable::fmt(100.0 * pruned_fraction(n, m, n), 1) + "%",
                  std::to_string(oc.flops()), std::to_string(full.flops())});
    }
  }
  std::printf("%s\n", tt.str().c_str());

  std::printf("Zero-padded inverse FFT (input pruning):\n");
  trace::TextTable tz({"n", "nonzero", "unit ops", "retained", "flops saved"});
  for (std::size_t n : {8u, 16u, 64u, 256u}) {
    for (std::size_t div : {4u, 2u}) {
      const std::size_t p = n / div;
      const auto oc = count_pruned_ops(n, n, p);
      const auto full = count_full_ops(n);
      tz.add_row({std::to_string(n), std::to_string(p), std::to_string(oc.unit_ops),
                  trace::TextTable::fmt(100.0 * pruned_fraction(n, n, p), 1) + "%",
                  trace::TextTable::fmt(
                      100.0 * (1.0 - static_cast<double>(oc.flops()) /
                                         static_cast<double>(full.flops())),
                      1) +
                      "%"});
    }
  }
  std::printf("%s\n", tz.str().c_str());

  std::printf("Combined fwd-truncated + inv-padded layer (the paper's 25%%-67.5%% band,\n"
              "per-thread FFT sizes):\n");
  trace::TextTable tc({"n", "modes", "combined reduction"});
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    const std::size_t m = n / 4;
    const auto fwd = count_pruned_ops(n, m, n).unit_ops;
    const auto inv = count_pruned_ops(n, n, m).unit_ops;
    const auto full = 2 * count_full_ops(n).unit_ops;
    tc.add_row({std::to_string(n), std::to_string(m),
                trace::TextTable::fmt(
                    100.0 * (1.0 - static_cast<double>(fwd + inv) / static_cast<double>(full)),
                    1) +
                    "%"});
  }
  std::printf("%s", tc.str().c_str());
  return 0;
}
