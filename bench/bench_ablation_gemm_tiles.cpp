// Ablation: tile-shape sensitivity of the templated CGEMM (Section 3.1's
// "fully templated kernel ... flexible tuning of thread block shapes").
#include <cstdio>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "gemm/cgemm.hpp"
#include "runtime/timer.hpp"
#include "tensor/aligned_buffer.hpp"
#include "trace/counters.hpp"
#include "trace/table.hpp"

namespace {

using namespace turbofno;

template <class Cfg>
double time_config(std::size_t M, std::size_t N, std::size_t K, std::size_t reps) {
  AlignedBuffer<c32> A(M * K);
  AlignedBuffer<c32> B(K * N);
  AlignedBuffer<c32> C(M * N);
  core::fill_random(A.span(), 1u);
  core::fill_random(B.span(), 2u);
  return runtime::time_best_of(reps, [&] {
    gemm::cgemm_tiled<Cfg>(M, N, K, c32{1.0f, 0.0f}, A.data(), K, B.data(), N, c32{0.0f, 0.0f},
                           C.data(), N);
  });
}

template <class Cfg>
void row(trace::TextTable& t, const char* label, std::size_t M, std::size_t N, std::size_t K,
         std::size_t reps) {
  const double s = time_config<Cfg>(M, N, K, reps);
  const double gflops = static_cast<double>(trace::cgemm_flops(M, N, K)) / s * 1e-9;
  const auto shape = gemm::shape_of<Cfg>();
  t.add_row({label,
             std::to_string(shape.mtb) + "x" + std::to_string(shape.ntb) + "x" +
                 std::to_string(shape.ktb),
             std::to_string(shape.mt) + "x" + std::to_string(shape.nt),
             trace::TextTable::fmt(s * 1e3, 3), trace::TextTable::fmt(gflops, 1)});
}

void sweep(const char* title, std::size_t M, std::size_t N, std::size_t K, std::size_t reps) {
  std::printf("%s (M=%zu N=%zu K=%zu):\n", title, M, N, K);
  trace::TextTable t({"config", "block tile", "reg tile", "ms", "GFLOP/s"});
  row<gemm::FusedTiles>(t, "fused (Table 1)", M, N, K, reps);
  row<gemm::StandaloneTiles>(t, "standalone 64x64", M, N, K, reps);
  row<gemm::AblTilesSmall>(t, "small 16x16", M, N, K, reps);
  row<gemm::AblTilesWideN>(t, "wide-N 32x64", M, N, K, reps);
  row<gemm::AblTilesTallM>(t, "tall-M 64x32", M, N, K, reps);
  row<gemm::AblTilesDeepK>(t, "deep-K ktb=16", M, N, K, reps);
  row<gemm::AblTilesReg2>(t, "reg tile 2x2", M, N, K, reps);
  row<gemm::AblTilesReg8>(t, "reg tile 8x8", M, N, K, reps);
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = turbofno::bench::Options::parse(argc, argv);
  std::printf("== Ablation: CGEMM tile shapes ==\n\n");
  const std::size_t scale = opt.full ? 4 : 1;
  sweep("FNO tall-and-skinny", 65536 * scale, 64, 64, opt.reps);
  sweep("square", 512, 512, 512, opt.reps);
  sweep("small-N (fused shape)", 65536 * scale, 32, 8, opt.reps);
  return 0;
}
