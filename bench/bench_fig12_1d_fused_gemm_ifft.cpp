// Figure 12: fused CGEMM + iFFT epilogue (method C) vs PyTorch, A, B.
#include "sweep1d.hpp"

int main(int argc, char** argv) {
  using namespace turbofno::bench;
  using turbofno::fused::Variant;
  const Options opt = Options::parse(argc, argv);
  std::printf("== Fig 12: 1D fused CGEMM-iFFT (C) ==\n\n");
  run_1d_figure(12, "FFT+Fused_GEMM_iFFT", opt,
                {Variant::PyTorch, Variant::FftOpt, Variant::FusedFftGemm,
                 Variant::FusedGemmIfft});
  return 0;
}
