// Figure 15: 2D FFT optimization (pruning + truncation + zero padding).
#include "sweep2d.hpp"

int main(int argc, char** argv) {
  using namespace turbofno::bench;
  using turbofno::fused::Variant;
  const Options opt = Options::parse(argc, argv);
  std::printf("== Fig 15: 2D FFT pruning/truncation/zero-padding (A) ==\n\n");
  run_2d_figure(15, "FFT+GEMM+iFFT (built-in filtering, unfused)", opt,
                {Variant::PyTorch, Variant::FftOpt});
  return 0;
}
