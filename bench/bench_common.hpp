// Shared harness for the per-figure benchmark binaries.
//
// Every figure bench reports, for each problem point, the measured CPU
// wall-clock of each pipeline variant plus the A100-model prediction driven
// by the recorded traffic counters — "Performance vs PyTorch (%)" exactly as
// the paper's y-axes, where 100% means parity and 150% means 1.5x.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "baseline/problem.hpp"
#include "fused/ladder.hpp"
#include "gpusim/cost_model.hpp"
#include "tensor/aligned_buffer.hpp"

namespace turbofno::bench {

struct Options {
  bool full = false;     // paper-scale sweep (large, slow)
  std::size_t reps = 3;  // timed repetitions (best-of)
  std::string json;      // --json <path>: machine-readable per-variant results
  static Options parse(int argc, char** argv);
};

/// One pipeline variant's result on one problem point.
struct VariantResult {
  fused::Variant variant;
  std::string name;
  double seconds = 0.0;          // measured CPU wall-clock (best-of)
  double model_seconds = 0.0;    // A100 cost-model prediction
  std::uint64_t bytes = 0;
  std::uint64_t flops = 0;
  std::uint64_t launches = 0;
  std::string spectral_path = "complex";  // "complex" (C2C) or "real" (RFFT lane)
};

struct PointResult {
  std::string label;  // e.g. "K=32" or "M=65536"
  std::vector<VariantResult> variants;  // [0] is PyTorch

  /// Measured performance vs PyTorch in percent (100 = parity).
  [[nodiscard]] double perf_vs_base(std::size_t i) const {
    return 100.0 * variants.at(0).seconds / variants.at(i).seconds;
  }
  [[nodiscard]] double model_perf_vs_base(std::size_t i) const {
    return 100.0 * variants.at(0).model_seconds / variants.at(i).model_seconds;
  }
};

/// Runs the given ladder variants on one 1D problem and times them.
PointResult run_point_1d(const baseline::Spectral1dProblem& prob,
                         const std::vector<fused::Variant>& variants, std::size_t reps);

/// Same for 2D problems.
PointResult run_point_2d(const baseline::Spectral2dProblem& prob,
                         const std::vector<fused::Variant>& variants, std::size_t reps);

/// Times one variant's complex (C2C) lane against its real-input (RFFT)
/// lane on the same problem: variants[0] is the complex run (the
/// perf_vs_base baseline), variants[1] the half-spectrum real run, so
/// perf_vs_base(1) reads as "real lane vs complex lane in percent".
PointResult run_point_1d_real(const baseline::Spectral1dProblem& prob, fused::Variant variant,
                              std::size_t reps);
PointResult run_point_2d_real(const baseline::Spectral2dProblem& prob, fused::Variant variant,
                              std::size_t reps);

/// Prints the standard figure table: one row per point, one column pair
/// (measured %, modeled %) per non-baseline variant.
void print_figure_table(const std::string& title, const std::vector<PointResult>& points);

/// Summary line: average and max measured speedup of the last variant.
void print_summary(const std::vector<PointResult>& points, std::size_t variant_index);

/// Records one figure's results for --json emission and rewrites the file.
/// The path comes from the last Options::parse; a no-op when --json was not
/// given.  print_figure_table calls this automatically, so every figure
/// bench can drop a BENCH_*.json perf-trajectory file with per-variant
/// seconds and GFLOP/s; benches that format their own tables may call it
/// directly.
void record_json(const std::string& title, const std::vector<PointResult>& points);

/// The A100 spec every bench uses.
const gpusim::GpuSpec& a100();

}  // namespace turbofno::bench
