// Shared sweep definitions for the 1D evaluation figures (paper Figs 10-13).
//
// Axes mirror the paper: subplot (a) sweeps the hidden dimension K at a
// fixed GEMM row count M; subplots (b)-(d) sweep M at K = 32 / 64 / 128.
// M = batch * modes (the tall-and-skinny GEMM's row dimension), so the
// signal count is M / modes.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace turbofno::bench {

inline baseline::Spectral1dProblem make_1d(std::size_t gemm_m, std::size_t k, std::size_t n,
                                           std::size_t modes) {
  baseline::Spectral1dProblem p;
  p.batch = std::max<std::size_t>(1, gemm_m / modes);
  p.hidden = k;
  p.out_dim = k;  // paper: OutputDim comparable to HiddenDim
  p.n = n;
  p.modes = modes;
  return p;
}

/// Runs the (a) + (b)-(d) sweeps of one 1D figure for a variant subset and
/// prints the tables.  `fig` is the paper figure number for the title.
inline void run_1d_figure(int fig, const char* what, const Options& opt,
                          const std::vector<fused::Variant>& variants) {
  const std::size_t n = 128;     // FFT size (paper uses 128/256-pt)
  const std::size_t modes = 64;  // 50% truncation

  // (a) sweep K at fixed M.
  const std::size_t m_fixed = opt.full ? (1u << 20) : (1u << 16);
  const std::vector<std::size_t> ks =
      opt.full ? std::vector<std::size_t>{16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96,
                                          104, 112, 120, 128, 136}
               : std::vector<std::size_t>{16, 32, 64, 96, 128};
  std::vector<PointResult> sweep_k;
  for (const auto k : ks) {
    auto pr = run_point_1d(make_1d(m_fixed, k, n, modes), variants, opt.reps);
    pr.label = "K=" + std::to_string(k);
    sweep_k.push_back(std::move(pr));
  }
  char title[160];
  std::snprintf(title, sizeof title, "Figure %d(a): %s — sweep K, M=%zu, %zu-pt FFT, modes=%zu",
                fig, what, m_fixed, n, modes);
  print_figure_table(title, sweep_k);

  // (b)-(d) sweep M at fixed K.
  const std::vector<std::size_t> ms =
      opt.full ? std::vector<std::size_t>{64, 256, 1024, 4096, 16384, 65536, 262144}
               : std::vector<std::size_t>{256, 4096, 65536};
  int sub = 'b';
  for (const std::size_t k : {std::size_t{32}, std::size_t{64}, std::size_t{128}}) {
    std::vector<PointResult> sweep_m;
    for (const auto m : ms) {
      auto pr = run_point_1d(make_1d(m, k, n, modes), variants, opt.reps);
      pr.label = "M=" + std::to_string(m);
      sweep_m.push_back(std::move(pr));
    }
    std::snprintf(title, sizeof title, "Figure %d(%c): %s — sweep M, K=%zu", fig, sub, what, k);
    print_figure_table(title, sweep_m);
    print_summary(sweep_m, sweep_m[0].variants.size() - 1);
    ++sub;
  }
  print_summary(sweep_k, sweep_k[0].variants.size() - 1);
}

}  // namespace turbofno::bench
