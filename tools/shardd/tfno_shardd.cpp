// tfno_shardd — sharded serving daemon (router + worker fleet).
//
// Fleet mode (default):
//
//   tfno_shardd [--topology SPEC] [--port P] [--workers N]
//
// builds a Topology (the demo topology spreads one 1D and one 2D model
// per worker when --topology is omitted; N defaults to the
// TURBOFNO_SHARD_WORKERS knob), starts the epoll router on the public
// port (default: TURBOFNO_SHARD_PORT), and runs a Supervisor that
// fork/execs this same binary once per worker index, harvesting each
// worker's ephemeral private port and rewiring the router on restarts.
// SIGTERM/SIGINT shut the fleet down cleanly.
//
// Worker mode (what the supervisor spawns; also usable standalone):
//
//   tfno_shardd --worker --index I --topology SPEC [--port P]
//
// serves topology SPEC's worker-I slice on a private port (ephemeral by
// default) and announces it on stdout as `TFNO_SHARDD_PORT=<port>`.
//
// Topology SPEC grammar (';'-separated, '@' assigns the owning worker):
//   1d:in,hidden,out,n,modes,layers@W
//   2d:in,hidden,out,nx,ny,modes_x,modes_y,layers@W
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/env.hpp"
#include "shard/router.hpp"
#include "shard/supervisor.hpp"
#include "shard/topology.hpp"
#include "shard/worker.hpp"

namespace {

using namespace turbofno;

/// Path of this binary (the supervisor re-execs it in worker mode).
std::string self_path() {
  char buf[4096];
  const auto n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "tfno_shardd";
  buf[n] = '\0';
  return buf;
}

/// Demo topology: one small 1D and one small 2D model per worker.
shard::Topology demo_topology(std::size_t workers) {
  shard::Topology topo;
  for (std::size_t w = 0; w < workers; ++w) {
    core::Fno1dConfig c1;
    c1.in_channels = 1;
    c1.hidden = 16;
    c1.out_channels = 1;
    c1.n = 256;
    c1.modes = 16;
    c1.layers = 2;
    topo.add(c1, w);
    core::Fno2dConfig c2;
    c2.in_channels = 1;
    c2.hidden = 8;
    c2.out_channels = 1;
    c2.nx = 32;
    c2.ny = 32;
    c2.modes_x = 8;
    c2.modes_y = 8;
    c2.layers = 2;
    topo.add(c2, w);
  }
  return topo;
}

/// Blocks SIGTERM/SIGINT process-wide (call before spawning threads) and
/// returns the set to sigwait on.
sigset_t block_shutdown_signals() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  return set;
}

int run_worker(const shard::Topology& topo, std::size_t index, int port) {
  const sigset_t set = block_shutdown_signals();
  shard::Worker::Options opts;
  opts.port = port;
  shard::Worker worker(topo, index, opts);
  worker.start();
  // The announcement line the supervisor harvests.  stdout may be a pipe:
  // flush explicitly so the port is visible before the first request.
  std::printf("TFNO_SHARDD_PORT=%u\n", static_cast<unsigned>(worker.port()));
  std::fflush(stdout);
  int sig = 0;
  sigwait(&set, &sig);
  worker.stop();
  return 0;
}

int run_fleet(const shard::Topology& topo, int port) {
  const sigset_t set = block_shutdown_signals();
  shard::Router::Options ropts;
  ropts.port = port;
  shard::Router router(topo, ropts);
  shard::Supervisor::Options sopts;
  sopts.shardd_path = self_path();
  shard::Supervisor supervisor(
      topo, sopts, [&router](std::size_t index, std::uint16_t worker_port) {
        router.set_worker_endpoint(index, worker_port);
      });
  router.start();
  supervisor.start();
  std::fprintf(stderr, "tfno_shardd: %zu models, %zu workers, port %u\n",
               topo.model_count(), topo.worker_count(),
               static_cast<unsigned>(router.bound_port()));
  int sig = 0;
  sigwait(&set, &sig);
  supervisor.stop();
  router.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool worker_mode = false;
  std::size_t index = 0;
  std::string spec;
  int port = -1;  // fleet: TURBOFNO_SHARD_PORT; worker: ephemeral
  long workers = runtime::env_long_clamped("TURBOFNO_SHARD_WORKERS", 2, 1, 64);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tfno_shardd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--worker") {
      worker_mode = true;
    } else if (arg == "--index") {
      index = std::stoul(next());
    } else if (arg == "--topology") {
      spec = next();
    } else if (arg == "--port") {
      port = std::stoi(next());
    } else if (arg == "--workers") {
      workers = std::stol(next());
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: tfno_shardd [--topology SPEC] [--port P] [--workers N]\n"
                   "       tfno_shardd --worker --index I --topology SPEC [--port P]\n");
      return 0;
    } else {
      std::fprintf(stderr, "tfno_shardd: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  try {
    const shard::Topology topo = spec.empty()
                                     ? demo_topology(static_cast<std::size_t>(workers))
                                     : shard::Topology::parse(spec);
    if (worker_mode) {
      if (index >= topo.worker_count()) {
        std::fprintf(stderr, "tfno_shardd: --index %zu out of range\n", index);
        return 2;
      }
      return run_worker(topo, index, port < 0 ? 0 : port);
    }
    return run_fleet(topo, port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tfno_shardd: %s\n", e.what());
    return 1;
  }
}
