#pragma once
#include "core/engine.hpp"
