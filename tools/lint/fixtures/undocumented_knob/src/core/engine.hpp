#pragma once
// public engine header
