#include "runtime/env.hpp"
static const long k = env_long("TURBOFNO_KNOB", 1);
static const long g = env_long("TURBOFNO_SECRET_KNOB", 0);
