#include <cstdlib>
long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v ? fallback + 1 : fallback;
}
