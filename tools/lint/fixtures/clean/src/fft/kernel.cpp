void kernel() {
  // tfno-hot-begin: worker body
  int x = 0;
  (void)x;  // arena.alloc would go here
  // tfno-hot-end
}
