#include "runtime/env.hpp"
static const long k = env_long("TURBOFNO_KNOB", 1);
