#pragma once
long env_long(const char*, long);
