#include <vector>
void kernel() {
  std::vector<float> warm;   // fine: outside the hot region
  warm.reserve(16);
  // tfno-hot-begin: worker body
  warm.resize(32);           // BAD: heap allocation in the hot region
  // tfno-hot-end
}
