#pragma once
#include "core/engine.hpp"
#include "core/hidden.hpp"
