#pragma once
// reachable but unlisted
