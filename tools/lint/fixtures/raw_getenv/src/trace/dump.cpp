#include <cstdlib>
const char* dump_dir() { return std::getenv("TURBOFNO_DUMP"); }
