#!/usr/bin/env python3
"""Repo-invariant linter for TurboFNO.

Machine-checks cross-file invariants that slip through compilers and code
review because each one lives in two places at once:

  public-headers   every header reachable from the curated facade
                   (src/core/api.hpp) must be listed in CMake's
                   TURBOFNO_PUBLIC_HEADERS, or an installed tree cannot
                   compile against the advertised surface (the exact bug
                   class that shipped thread_pool.hpp late).
  knob-docs        every TURBOFNO_* environment knob read through the
                   runtime/env helpers must have a row in README's
                   "Runtime knobs" env table, and every documented row
                   must still be read somewhere in src/ or tools/ (no
                   stale docs).
  raw-getenv       all environment access goes through runtime/env, so
                   knobs are greppable one way and parsing stays
                   defensive in one place.  std::getenv anywhere else in
                   src/ or tools/ (tfno_shardd reads knobs too) is a
                   violation.
  hotpath-alloc    regions bracketed by `// tfno-hot-begin` and
                   `// tfno-hot-end` in src/fused/ and src/fft/ are
                   arena-scoped kernel worker bodies; heap allocation
                   there (new/malloc/resize/push_back/...) would
                   serialize the parallel sweep on the allocator lock.

Usage:
  check_invariants.py [--root DIR]   lint the tree rooted at DIR (default:
                                     the repository containing this script)
  check_invariants.py --self-test    run the linter against the seeded
                                     fixture corpus in tools/lint/fixtures
                                     (one clean tree + one tree per
                                     violation class) and verify it passes
                                     and fails exactly where it should

Exit status: 0 when clean, 1 when any invariant is violated (each
violation is printed as an `INVARIANT: ...` line with file context).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------- utilities


def fail(violations: list[str]) -> int:
    for v in violations:
        print(f"INVARIANT: {v}")
    return 1 if violations else 0


def strip_line_comment(line: str) -> str:
    """Drops a trailing // comment (string literals in this codebase never
    contain //, so a lexer is not needed)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


# Knob and getenv containment cover the tool binaries too: tfno_shardd
# reads TURBOFNO_SHARD_WORKERS, and any future tool knob must stay
# documented and env-helper-routed the same way library knobs are.
KNOB_SUBDIRS = ("src", "tools")


def source_files(root: Path, subdirs: tuple[str, ...] = ("src",)) -> list[Path]:
    # tools/lint holds this linter's fixture corpus — trees deliberately
    # seeded with violations — so it is never part of the linted surface.
    fixture_base = root / "tools" / "lint"
    out: list[Path] = []
    for sub in subdirs:
        base = root / sub
        if base.is_dir():
            out.extend(p for p in sorted(base.rglob("*"))
                       if p.suffix in (".hpp", ".cpp", ".h", ".cc")
                       and not p.is_relative_to(fixture_base))
    return out


# ------------------------------------------------- check 1: public headers


def check_public_headers(root: Path) -> list[str]:
    api = root / "src" / "core" / "api.hpp"
    cmake = root / "CMakeLists.txt"
    if not api.is_file() or not cmake.is_file():
        return []  # nothing to check in this tree

    # The CMake list: relative header paths between
    # `set(TURBOFNO_PUBLIC_HEADERS` and its closing `)`.
    m = re.search(r"set\(TURBOFNO_PUBLIC_HEADERS\s+(.*?)\)", cmake.read_text(),
                  re.DOTALL)
    listed: set[str] = set()
    if m:
        listed = {tok for tok in m.group(1).split() if tok.endswith(".hpp")}

    # The include closure of api.hpp over quoted project includes.
    src = root / "src"
    closure: set[str] = set()
    stack = ["core/api.hpp"]
    while stack:
        rel = stack.pop()
        if rel in closure:
            continue
        closure.add(rel)
        path = src / rel
        if not path.is_file():
            continue
        for line in path.read_text().splitlines():
            inc = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
            if inc and (src / inc.group(1)).is_file():
                stack.append(inc.group(1))

    violations = [
        f"public-headers: src/{rel} is reachable from core/api.hpp but "
        f"missing from TURBOFNO_PUBLIC_HEADERS in CMakeLists.txt "
        f"(an installed tree cannot compile against the facade)"
        for rel in sorted(closure - listed)
    ]
    violations += [
        f"public-headers: {rel} is listed in TURBOFNO_PUBLIC_HEADERS but "
        f"src/{rel} does not exist"
        for rel in sorted(listed)
        if not (src / rel).is_file()
    ]
    return violations


# ----------------------------------------------------- check 2: knob docs

ENV_HELPER_RE = re.compile(
    r'\benv_(?:long|long_clamped|flag|string)\s*\(\s*"(TURBOFNO_\w+)"')


def readme_knob_table(readme: Path) -> set[str]:
    """TURBOFNO_* names in the first column of README's env-knob table
    (the markdown table whose header row starts with `| Env var`)."""
    knobs: set[str] = set()
    in_table = False
    for line in readme.read_text().splitlines():
        if re.match(r"\|\s*Env var", line):
            in_table = True
            continue
        if in_table:
            if not line.startswith("|"):
                in_table = False
                continue
            cell = line.split("|")[1]
            knobs.update(re.findall(r"TURBOFNO_\w+", cell))
    return knobs


def check_knob_docs(root: Path) -> list[str]:
    readme = root / "README.md"
    if not readme.is_file():
        return []
    documented = readme_knob_table(readme)
    read_in_code: dict[str, Path] = {}
    for path in source_files(root, KNOB_SUBDIRS):
        for m in ENV_HELPER_RE.finditer(path.read_text()):
            read_in_code.setdefault(m.group(1), path)

    violations = [
        f"knob-docs: {knob} is read in "
        f"{read_in_code[knob].relative_to(root)} but has no row in "
        f"README's \"Runtime knobs\" env table"
        for knob in sorted(set(read_in_code) - documented)
    ]
    violations += [
        f"knob-docs: {knob} is documented in README's \"Runtime knobs\" "
        f"env table but no code under src/ or tools/ reads it (stale doc?)"
        for knob in sorted(documented - set(read_in_code))
    ]
    return violations


# ---------------------------------------------------- check 3: raw getenv

GETENV_RE = re.compile(r"\b(?:std::)?getenv\s*\(")


def check_raw_getenv(root: Path) -> list[str]:
    allowed = {Path("src/runtime/env.cpp"), Path("src/runtime/env.hpp")}
    violations = []
    for path in source_files(root, KNOB_SUBDIRS):
        if path.relative_to(root) in allowed:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if GETENV_RE.search(strip_line_comment(line)):
                violations.append(
                    f"raw-getenv: {path.relative_to(root)}:{lineno} calls "
                    f"getenv directly; route it through runtime/env "
                    f"(env_long/env_flag/env_string) so knobs stay "
                    f"greppable and defensively parsed in one place")
    return violations


# ------------------------------------------------ check 4: hot-path allocs

HOT_BEGIN = "tfno-hot-begin"
HOT_END = "tfno-hot-end"

# Heap-allocating tokens forbidden between the markers.  Arena allocation
# (`arena.alloc<T>(...)` / `.scope()`) is the approved mechanism and none
# of these patterns match it.
ALLOC_RES = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:std::)?(?:malloc|calloc|realloc)\s*\("), "malloc-family call"),
    (re.compile(r"\.\s*(?:resize|reserve|push_back|emplace_back|insert|assign)\s*\("),
     "resizing container call"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "make_unique/make_shared"),
    (re.compile(r"\bstd::vector\s*<"), "std::vector construction"),
    (re.compile(r"\bstd::string\b"), "std::string construction"),
]


def check_hotpath_allocs(root: Path) -> list[str]:
    violations = []
    for path in source_files(root):
        rel = path.relative_to(root)
        parts = rel.parts
        if len(parts) < 2 or parts[0] != "src" or parts[1] not in ("fused", "fft"):
            continue
        in_hot = False
        begin_line = 0
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            if HOT_BEGIN in raw:
                if in_hot:
                    violations.append(
                        f"hotpath-alloc: {rel}:{lineno} nested/unclosed "
                        f"tfno-hot-begin (previous one at line {begin_line})")
                in_hot = True
                begin_line = lineno
                continue
            if HOT_END in raw:
                if not in_hot:
                    violations.append(
                        f"hotpath-alloc: {rel}:{lineno} tfno-hot-end "
                        f"without a matching tfno-hot-begin")
                in_hot = False
                continue
            if not in_hot:
                continue
            code = strip_line_comment(raw)
            for pattern, what in ALLOC_RES:
                if pattern.search(code):
                    violations.append(
                        f"hotpath-alloc: {rel}:{lineno} {what} inside a "
                        f"tfno-hot region (begun at line {begin_line}); "
                        f"use the thread-local scratch arena instead")
        if in_hot:
            violations.append(
                f"hotpath-alloc: {rel}:{begin_line} tfno-hot-begin is "
                f"never closed with tfno-hot-end")
    return violations


# ------------------------------------------------------------------ driver

CHECKS = [
    check_public_headers,
    check_knob_docs,
    check_raw_getenv,
    check_hotpath_allocs,
]


def lint(root: Path) -> list[str]:
    violations: list[str] = []
    for check in CHECKS:
        violations.extend(check(root))
    return violations


def self_test(fixtures: Path) -> int:
    """The fixture corpus is the linter's own regression suite: the clean
    tree must pass, and each seeded tree must fail with (exactly) the
    violation class its name advertises."""
    expected = {
        "clean": None,
        "missing_header": "public-headers",
        "undocumented_knob": "knob-docs",
        "raw_getenv": "raw-getenv",
        "hotpath_alloc": "hotpath-alloc",
    }
    failures = []
    for name, want in sorted(expected.items()):
        tree = fixtures / name
        if not tree.is_dir():
            failures.append(f"fixture {name}: missing directory {tree}")
            continue
        violations = lint(tree)
        classes = {v.split(":", 1)[0] for v in violations}
        if want is None:
            if violations:
                failures.append(
                    f"fixture {name}: expected clean, got {violations}")
        else:
            if want not in classes:
                failures.append(
                    f"fixture {name}: expected a {want} violation, got "
                    f"{violations or 'none'}")
            if classes - {want}:
                failures.append(
                    f"fixture {name}: unexpected extra violation classes "
                    f"{sorted(classes - {want})} in {violations}")
    for f in failures:
        print(f"SELF-TEST FAILED: {f}")
    if not failures:
        print(f"self-test: {len(expected)} fixtures behaved as expected")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture corpus instead of linting")
    args = parser.parse_args()
    if args.self_test:
        return self_test(Path(__file__).resolve().parent / "fixtures")
    violations = lint(args.root.resolve())
    if not violations:
        print("check_invariants: all invariants hold")
    return fail(violations)


if __name__ == "__main__":
    sys.exit(main())
